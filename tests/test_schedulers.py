"""Tests for the baseline memory request schedulers."""

import pytest

from repro.controller.config import ControllerConfig
from repro.controller.memory_controller import ChannelController
from repro.controller.request import make_read, make_rng
from repro.dram.dram_system import DRAMSystem
from repro.sched import BLISS, FRFCFS, FRFCFSCap, make_scheduler


def build(scheduler):
    dram = DRAMSystem()
    controller = ChannelController(
        channel=dram.channels[0],
        dram=dram,
        scheduler=scheduler,
        config=ControllerConfig(),
    )
    return dram, controller


def addr(dram, bank=0, row=0, column=0):
    return dram.mapping.encode(channel=0, bank=bank, row=row, column=column)


class TestFRFCFS:
    def test_prefers_row_hit_over_older_request(self):
        scheduler = FRFCFS()
        dram, controller = build(scheduler)
        controller.channel.service_access(0, 5, now=0)  # open row 5 in bank 0
        older_miss = make_read(addr(dram, bank=1, row=9), 0, cycle=1)
        newer_hit = make_read(addr(dram, bank=0, row=5, column=3), 0, cycle=2)
        controller.read_queue.push(older_miss)
        controller.read_queue.push(newer_hit)
        assert scheduler.select(controller.read_queue, controller, 10) is newer_hit

    def test_falls_back_to_oldest(self):
        scheduler = FRFCFS()
        dram, controller = build(scheduler)
        first = make_read(addr(dram, bank=1, row=9), 0, cycle=1)
        second = make_read(addr(dram, bank=2, row=3), 0, cycle=2)
        controller.read_queue.push(first)
        controller.read_queue.push(second)
        assert scheduler.select(controller.read_queue, controller, 10) is first

    def test_empty_queue_returns_none(self):
        scheduler = FRFCFS()
        dram, controller = build(scheduler)
        assert scheduler.select(controller.read_queue, controller, 0) is None

    def test_rng_request_is_never_a_row_hit(self):
        scheduler = FRFCFS()
        dram, controller = build(scheduler)
        rng = make_rng(16, 0, cycle=1)
        controller.read_queue.push(rng)
        assert scheduler.select(controller.read_queue, controller, 5) is rng


class TestFRFCFSCap:
    def test_cap_limits_consecutive_hits(self):
        scheduler = FRFCFSCap(cap=2)
        dram, controller = build(scheduler)
        scheduler.bind(dram.organization)
        controller.channel.service_access(0, 5, now=0)
        hits = [make_read(addr(dram, bank=0, row=5, column=c), 0, cycle=c) for c in range(3)]
        miss = make_read(addr(dram, bank=1, row=9), 1, cycle=0)
        controller.read_queue.push(miss)
        for hit in hits:
            controller.read_queue.push(hit)

        # Serve two hits, then the cap forces the older miss to be chosen.
        for expected in (hits[0], hits[1]):
            selected = scheduler.select(controller.read_queue, controller, 10)
            assert selected is expected
            controller.read_queue.remove(selected)
            selected.decoded = controller.decode(selected)
            scheduler.notify_served(selected, 10)
        third = scheduler.select(controller.read_queue, controller, 20)
        assert third is miss

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            FRFCFSCap(cap=0)

    def test_reset_clears_streak(self):
        scheduler = FRFCFSCap(cap=1)
        scheduler._streak_length = 5
        scheduler.reset()
        assert scheduler._streak_length == 0


class TestBLISS:
    def test_blacklists_after_consecutive_serves(self):
        scheduler = BLISS(blacklisting_threshold=3, clearing_interval=1000)
        dram, controller = build(scheduler)
        for i in range(3):
            scheduler.notify_served(make_read(addr(dram, row=i), core_id=7, cycle=i), now=i)
        assert 7 in scheduler.blacklist
        assert scheduler.blacklist_events == 1

    def test_prefers_non_blacklisted_application(self):
        scheduler = BLISS(blacklisting_threshold=2, clearing_interval=10_000)
        dram, controller = build(scheduler)
        for i in range(2):
            scheduler.notify_served(make_read(addr(dram, row=i), core_id=0, cycle=i), now=i)
        blacklisted = make_read(addr(dram, bank=1, row=1), core_id=0, cycle=0)
        other = make_read(addr(dram, bank=2, row=2), core_id=1, cycle=5)
        controller.read_queue.push(blacklisted)
        controller.read_queue.push(other)
        assert scheduler.select(controller.read_queue, controller, 10) is other

    def test_blacklist_cleared_after_interval(self):
        scheduler = BLISS(blacklisting_threshold=1, clearing_interval=100)
        dram, controller = build(scheduler)
        scheduler.notify_served(make_read(addr(dram), core_id=3, cycle=0), now=0)
        assert 3 in scheduler.blacklist
        scheduler.tick(150)
        assert not scheduler.blacklist
        assert scheduler.clear_events == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BLISS(blacklisting_threshold=0)
        with pytest.raises(ValueError):
            BLISS(clearing_interval=0)

    def test_reset(self):
        scheduler = BLISS()
        scheduler.blacklist.add(1)
        scheduler.reset()
        assert not scheduler.blacklist


class TestFactory:
    def test_make_scheduler_names(self):
        assert isinstance(make_scheduler("fr-fcfs"), FRFCFS)
        assert isinstance(make_scheduler("fr-fcfs+cap", cap=8), FRFCFSCap)
        assert isinstance(make_scheduler("bliss"), BLISS)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("random-scheduler")
