"""End-to-end design comparisons (the headline claims of the paper).

These tests run the full simulator on a small but realistic two-core
workload (a medium/high intensity application plus the 5 Gb/s RNG
benchmark) and check the *direction* of the paper's headline results:

* DR-STRaNGe improves non-RNG performance over the RNG-oblivious baseline,
* DR-STRaNGe improves RNG application performance over the baseline,
* DR-STRaNGe improves system fairness over the baseline,
* DR-STRaNGe outperforms the Greedy Idle design for RNG applications,
* the benefits hold with the QUAC-TRNG mechanism as well.

They are slower than unit tests (a few seconds each) but are the core
regression guard for the reproduction.
"""

import pytest

from repro.core.config import DRStrangeConfig
from repro.sim.config import baseline_config, drstrange_config, greedy_config
from repro.sim.runner import compare_designs
from repro.workloads.spec import ApplicationSpec, RNGBenchmarkSpec, WorkloadMix

INSTRUCTIONS = 30_000


def make_mix(name="integration", mpki=9.0, throughput=5120.0):
    app = ApplicationSpec(f"{name}-app", mpki=mpki, row_locality=0.55, write_fraction=0.25)
    rng = RNGBenchmarkSpec(f"{name}-rng", throughput_mbps=throughput)
    return WorkloadMix(name=name, slots=[app, rng])


@pytest.fixture(scope="module")
def design_results(session_cache):
    configs = {
        "baseline": baseline_config(),
        "greedy": greedy_config(),
        "drstrange": drstrange_config(),
    }
    return compare_designs(
        make_mix(), configs, instructions=INSTRUCTIONS, cache=session_cache
    )


class TestHeadlineClaims:
    def test_baseline_shows_rng_interference(self, design_results):
        baseline = design_results["baseline"]
        assert baseline.non_rng_slowdown > 1.15
        assert baseline.unfairness > 1.2

    def test_drstrange_improves_non_rng_performance(self, design_results):
        assert (
            design_results["drstrange"].non_rng_slowdown
            < design_results["baseline"].non_rng_slowdown
        )

    def test_drstrange_improves_rng_performance(self, design_results):
        assert (
            design_results["drstrange"].rng_slowdown
            < design_results["baseline"].rng_slowdown
        )

    def test_drstrange_improves_fairness(self, design_results):
        assert design_results["drstrange"].unfairness < design_results["baseline"].unfairness

    def test_drstrange_beats_greedy_for_rng_apps(self, design_results):
        assert (
            design_results["drstrange"].rng_slowdown <= design_results["greedy"].rng_slowdown
        )

    def test_greedy_improves_over_baseline(self, design_results):
        assert (
            design_results["greedy"].non_rng_slowdown
            < design_results["baseline"].non_rng_slowdown
        )

    def test_buffer_serve_rate_significant(self, design_results):
        assert design_results["drstrange"].buffer_serve_rate > 0.4
        assert design_results["baseline"].buffer_serve_rate == 0.0

    def test_predictor_accuracy_reasonable(self, design_results):
        accuracy = design_results["drstrange"].predictor_accuracy
        assert accuracy is not None and accuracy > 0.5

    def test_drstrange_reduces_energy(self, design_results):
        assert (
            design_results["drstrange"].energy_nj < design_results["baseline"].energy_nj
        )


class TestBufferAblation:
    def test_buffer_is_the_main_rng_latency_lever(self, session_cache):
        mix = make_mix("buffer-ablation")
        configs = {
            "no-buffer": drstrange_config(drstrange=DRStrangeConfig(buffer_entries=0)),
            "with-buffer": drstrange_config(),
        }
        results = compare_designs(mix, configs, instructions=INSTRUCTIONS, cache=session_cache)
        assert results["with-buffer"].rng_slowdown < results["no-buffer"].rng_slowdown


class TestQUACTRNG:
    def test_benefits_hold_with_quac(self, session_cache):
        mix = make_mix("quac")
        configs = {
            "baseline": baseline_config(trng_name="quac-trng"),
            "drstrange": drstrange_config(trng_name="quac-trng"),
        }
        results = compare_designs(mix, configs, instructions=INSTRUCTIONS, cache=session_cache)
        assert results["drstrange"].non_rng_slowdown < results["baseline"].non_rng_slowdown
        assert results["drstrange"].rng_slowdown < results["baseline"].rng_slowdown


class TestLowIntensityRNG:
    def test_improvements_shrink_at_low_rng_throughput(self, session_cache):
        high_mix = make_mix("hi", throughput=5120.0)
        low_mix = make_mix("lo", throughput=640.0)
        configs = {"baseline": baseline_config(), "drstrange": drstrange_config()}
        high = compare_designs(high_mix, configs, instructions=INSTRUCTIONS, cache=session_cache)
        low = compare_designs(low_mix, configs, instructions=INSTRUCTIONS, cache=session_cache)
        gain_high = high["baseline"].non_rng_slowdown - high["drstrange"].non_rng_slowdown
        gain_low = low["baseline"].non_rng_slowdown - low["drstrange"].non_rng_slowdown
        assert gain_low < gain_high
        assert low["baseline"].non_rng_slowdown < high["baseline"].non_rng_slowdown


class TestPriorityModes:
    def test_prioritised_class_benefits(self, session_cache):
        mix = make_mix("prio")
        configs = {
            "rng-high": drstrange_config(priority_mode="rng-high"),
            "non-rng-high": drstrange_config(priority_mode="non-rng-high"),
        }
        results = compare_designs(mix, configs, instructions=INSTRUCTIONS, cache=session_cache)
        assert results["rng-high"].rng_slowdown <= results["non-rng-high"].rng_slowdown * 1.05
