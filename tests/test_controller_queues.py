"""Tests for the bounded request queues, including FIFO-order properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.queues import RequestQueue
from repro.controller.request import make_read


def _read(address, core=0, cycle=0):
    return make_read(address, core, cycle)


class TestRequestQueue:
    def test_push_and_len(self):
        queue = RequestQueue(capacity=4)
        assert queue.is_empty
        assert queue.push(_read(0))
        assert len(queue) == 1
        assert not queue.is_empty

    def test_capacity_enforced(self):
        queue = RequestQueue(capacity=2)
        assert queue.push(_read(0))
        assert queue.push(_read(64))
        assert queue.is_full
        assert not queue.push(_read(128))
        assert queue.rejected == 1

    def test_oldest_preserves_arrival_order(self):
        queue = RequestQueue(capacity=4)
        first = _read(0, cycle=1)
        second = _read(64, cycle=2)
        queue.push(first)
        queue.push(second)
        assert queue.oldest() is first
        queue.remove(first)
        assert queue.oldest() is second

    def test_pop_oldest(self):
        queue = RequestQueue(capacity=4)
        first, second = _read(0), _read(64)
        queue.push(first)
        queue.push(second)
        assert queue.pop_oldest() is first
        assert queue.pop_oldest() is second
        assert queue.pop_oldest() is None

    def test_remove_specific_request(self):
        queue = RequestQueue(capacity=4)
        a, b, c = _read(0), _read(64), _read(128)
        for request in (a, b, c):
            queue.push(request)
        queue.remove(b)
        assert list(queue) == [a, c]
        assert queue.total_dequeued == 1

    def test_requests_from_core(self):
        queue = RequestQueue(capacity=4)
        queue.push(_read(0, core=0))
        queue.push(_read(64, core=1))
        queue.push(_read(128, core=1))
        assert len(queue.requests_from([1])) == 2
        assert queue.has_request_from(0)
        assert not queue.has_request_from(7)

    def test_occupancy_sampling(self):
        queue = RequestQueue(capacity=4)
        queue.sample_occupancy()
        queue.push(_read(0))
        queue.push(_read(64))
        queue.sample_occupancy()
        assert queue.average_occupancy == pytest.approx(1.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RequestQueue(capacity=0)

    def test_contains(self):
        queue = RequestQueue(capacity=4)
        request = _read(0)
        queue.push(request)
        assert request in queue
        assert _read(64) not in queue


@settings(max_examples=100, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=2**20), min_size=1, max_size=32))
def test_fifo_order_property(addresses):
    """Popping oldest repeatedly returns requests in arrival order."""
    queue = RequestQueue(capacity=len(addresses))
    requests = [_read(addr * 64, cycle=i) for i, addr in enumerate(addresses)]
    for request in requests:
        assert queue.push(request)
    drained = []
    while not queue.is_empty:
        drained.append(queue.pop_oldest())
    assert drained == requests


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=16),
    pushes=st.integers(min_value=0, max_value=40),
)
def test_occupancy_never_exceeds_capacity(capacity, pushes):
    queue = RequestQueue(capacity=capacity)
    accepted = sum(1 for i in range(pushes) if queue.push(_read(i * 64)))
    assert len(queue) == accepted <= capacity
    assert queue.rejected == pushes - accepted
