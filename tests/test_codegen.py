"""The specialise-and-compile seam: rendering, caching, invalidation.

Bit-identity of the compiled engine across random systems lives in the
three-way differential fuzz harness (:mod:`tests.test_engine_fuzz`);
this module pins everything around it:

* the emitted source is deterministic and matches a checked-in golden
  file (refresh with ``REPRO_UPDATE_GOLDEN=1``), so codegen output stays
  reviewable in diffs;
* the content-addressed generated-source cache re-keys on a codegen
  version bump or a template-unit edit, deletes-and-regenerates corrupt
  disk entries (mirroring :meth:`ResultCache.get` semantics), and treats
  transient read errors as non-destructive misses;
* the compiled engine matches the event engine directly for each design
  (including under engine profiling), and concurrent distinct configs
  resolve to distinct generated modules.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from pathlib import Path

import pytest

from repro import telemetry
from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization
from repro.sim import codegen
from repro.sim.codegen import cache as codegen_cache
from repro.sim.config import (
    DESIGNS,
    ENGINE_COMPILED,
    ENGINE_EVENT,
    SimulationConfig,
    baseline_config,
)
from repro.sim.system import System
from repro.workloads.mixes import build_traces, dual_core_mixes
from repro.workloads.suites import representative_subset

GOLDEN_PATH = Path(__file__).parent / "golden" / "compiled_baseline_c1k2.py"

#: The golden configuration: the RNG-oblivious baseline on a one-channel
#: topology with two cores — small enough to review, and it exercises
#: the perf-critical rendering (fast serve path with the scheduler scan
#: inlined, unrolled component loops, folded timing literals).
GOLDEN_CONFIG = baseline_config(organization=DRAMOrganization(channels=1))
GOLDEN_CORES = 2


@pytest.fixture()
def isolated_codegen(tmp_path):
    """Scope the process-global codegen cache state to one test."""
    saved_root = codegen_cache._disk_root
    with codegen_cache._lock:
        saved_modules = dict(codegen_cache._modules)
        codegen_cache._modules.clear()
    saved_counters = dict(codegen_cache._counters)
    for name in codegen_cache._counters:
        codegen_cache._counters[name] = 0
    codegen.set_cache_dir(tmp_path)
    try:
        yield tmp_path
    finally:
        codegen_cache._disk_root = saved_root
        with codegen_cache._lock:
            codegen_cache._modules.clear()
            codegen_cache._modules.update(saved_modules)
        codegen_cache._counters.update(saved_counters)


def _forget_module(digest: str) -> None:
    """Drop one compiled module from the in-process layer (disk remains)."""
    with codegen_cache._lock:
        codegen_cache._modules.pop(digest, None)


def _dual_core_traces(instructions: int = 6_000):
    apps = representative_subset(4)
    mix = dual_core_mixes(apps)[0]
    return build_traces(mix, instructions, seed=0, mapping=AddressMapping(DRAMOrganization()))


# ----------------------------------------------------------------- golden


def test_emitted_source_matches_golden():
    digest, source = codegen.render_source(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(source, encoding="utf-8")
    assert GOLDEN_PATH.is_file(), (
        "golden emitted source missing; regenerate with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_codegen.py"
    )
    golden = GOLDEN_PATH.read_text(encoding="utf-8")
    assert source == golden, (
        f"emitted source (digest {digest[:12]}) no longer matches "
        f"{GOLDEN_PATH.name}; review the diff and refresh with "
        "REPRO_UPDATE_GOLDEN=1 pytest tests/test_codegen.py"
    )


def test_golden_source_compiles_and_defines_dispatch():
    source = GOLDEN_PATH.read_text(encoding="utf-8")
    namespace = {"__name__": "tests.golden.compiled_baseline_c1k2"}
    exec(compile(source, str(GOLDEN_PATH), "exec"), namespace)
    assert callable(namespace["dispatch"])


def test_render_is_deterministic():
    first_digest, first = codegen.render_source(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    second_digest, second = codegen.render_source(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert first == second
    assert first_digest == second_digest
    profiled_digest, profiled = codegen.render_source(
        GOLDEN_CONFIG, num_cores=GOLDEN_CORES, profiled=True
    )
    # Profiling hooks change the generated shape, so they re-key.
    assert profiled_digest != first_digest
    assert profiled != first


# ----------------------------------------------------------------- invalidation


def test_version_bump_rekeys_and_reemits(isolated_codegen, monkeypatch):
    spec = codegen.spec_for(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    before = codegen.spec_digest(spec)
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert codegen.source_path(before).is_file()
    assert codegen_cache._counters["emits"] == 1

    monkeypatch.setattr(codegen, "CODEGEN_VERSION", codegen.CODEGEN_VERSION + 1)
    after = codegen.spec_digest(spec)
    assert after != before
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    # The bumped version emitted a second module; the old entry is
    # untouched (other processes may still be on the old version).
    assert codegen.source_path(after).is_file()
    assert codegen.source_path(before).is_file()
    assert codegen_cache._counters["emits"] == 2


def _edited_select_index(self, queue, now, open_rows):
    """Stand-in unit with a deliberately different source body."""
    return 0


def test_template_edit_rekeys(monkeypatch):
    spec = codegen.spec_for(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    before = codegen.spec_digest(spec)

    original_units = codegen._unit_functions()

    def edited_units():
        units = dict(original_units)
        units["frfcfs_select_index"] = _edited_select_index
        return units

    monkeypatch.setattr(codegen, "_unit_functions", edited_units)
    monkeypatch.setattr(codegen, "_unit_asts", None)
    monkeypatch.setattr(codegen, "_units_digest", None)
    after = codegen.spec_digest(spec)
    assert after != before, "editing a template unit must re-key every module"


def test_corrupt_disk_entry_is_deleted_and_regenerated(isolated_codegen):
    spec = codegen.spec_for(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    digest = codegen.spec_digest(spec)
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    path = codegen.source_path(digest)
    healthy = path.read_text(encoding="utf-8")

    # A torn write / hand edit: the content-hash header no longer
    # matches.  The loader deletes the entry and the caller regenerates
    # under the same digest — exactly ResultCache.get semantics.
    path.write_text("# repro-codegen sha256:0000\ngarbage(\n", encoding="utf-8")
    _forget_module(digest)
    dispatch = codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert callable(dispatch)
    assert path.read_text(encoding="utf-8") == healthy
    assert codegen_cache._counters["corrupt"] == 1


def test_rehashed_noncompiling_entry_is_deleted_and_regenerated(isolated_codegen):
    spec = codegen.spec_for(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    digest = codegen.spec_digest(spec)
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    path = codegen.source_path(digest)
    healthy = path.read_text(encoding="utf-8")

    # A truncated-but-rehashed hand edit: the header verifies but the
    # body no longer compiles.  The SyntaxError is treated as corruption.
    body = "def dispatch(:\n"
    header_hash = codegen_cache._content_hash(body)
    path.write_text(f"# repro-codegen sha256:{header_hash}\n{body}", encoding="utf-8")
    _forget_module(digest)
    dispatch = codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert callable(dispatch)
    assert path.read_text(encoding="utf-8") == healthy
    assert codegen_cache._counters["corrupt"] == 1


def test_transient_read_error_is_a_nondestructive_miss(isolated_codegen):
    spec = codegen.spec_for(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    digest = codegen.spec_digest(spec)
    path = codegen.source_path(digest)
    # A directory where the entry should be raises OSError on read (and
    # on the atomic replace): the loader must miss without deleting
    # anything and the run must proceed from a fresh in-memory render.
    path.parent.mkdir(parents=True, exist_ok=True)
    path.mkdir()
    dispatch = codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert callable(dispatch)
    assert path.is_dir(), "a transient read error must not delete the entry"
    assert codegen_cache._counters["corrupt"] == 0


def test_disk_round_trip_skips_the_render(isolated_codegen):
    spec = codegen.spec_for(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    digest = codegen.spec_digest(spec)
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert codegen_cache._counters["emits"] == 1
    # Same process, warm module layer: a second resolve is a memory hit.
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert codegen_cache._counters["memory_hits"] == 1
    # A "new process" (cold module layer) resolves from disk, no re-emit.
    _forget_module(digest)
    dispatch = codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    assert callable(dispatch)
    assert codegen_cache._counters["disk_hits"] == 1
    assert codegen_cache._counters["emits"] == 1


def test_stats_and_clear_cover_the_disk_layer(isolated_codegen):
    codegen.specialized_dispatch(GOLDEN_CONFIG, num_cores=GOLDEN_CORES)
    stats = codegen.stats()
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0
    assert stats["emits"] == 1
    codegen.clear()
    stats = codegen.stats()
    assert stats["entries"] == 0
    assert stats["memory_entries"] == 0


# ----------------------------------------------------------------- equality


@pytest.mark.parametrize("design", DESIGNS)
def test_compiled_matches_event_per_design(design):
    traces = _dual_core_traces()
    config = SimulationConfig(design=design)
    event = System(
        list(traces), dataclasses.replace(config, engine=ENGINE_EVENT)
    ).run()
    compiled = System(
        list(traces), dataclasses.replace(config, engine=ENGINE_COMPILED)
    ).run()
    assert dataclasses.asdict(compiled) == dataclasses.asdict(event)


def test_profiled_compiled_matches_event():
    traces = _dual_core_traces()
    config = baseline_config()
    event = System(
        list(traces), dataclasses.replace(config, engine=ENGINE_EVENT)
    ).run()
    with telemetry.profiled():
        system = System(list(traces), dataclasses.replace(config, engine=ENGINE_COMPILED))
        compiled = system.run()
    assert dataclasses.asdict(compiled) == dataclasses.asdict(event)
    # The profiled rendering drives the same counters the interpreted
    # engine maintains — the generated hooks are live, not folded away.
    profile = system.last_engine.profile
    assert profile is not None
    assert profile.dispatch_iterations > 0


def test_concurrent_distinct_configs_resolve_distinct_modules(isolated_codegen):
    configs = [
        baseline_config(organization=DRAMOrganization(channels=1)),
        SimulationConfig(design="dr-strange"),
    ]
    digests = [
        codegen.spec_digest(codegen.spec_for(config, num_cores=2)) for config in configs
    ]
    assert digests[0] != digests[1]

    results = {}
    errors = []

    def resolve(index: int) -> None:
        try:
            results[index] = codegen.specialized_dispatch(configs[index], num_cores=2)
        except Exception as exc:  # pragma: no cover - diagnostics only
            errors.append(exc)

    threads = [threading.Thread(target=resolve, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert callable(results[0]) and callable(results[1])
    # Distinct digests resolved to distinct compiled modules: no tenant
    # can ever observe another tenant's generated code.
    assert results[0] is not results[1]
    assert {path.stem for path in codegen.cache_dir().glob("*.py")} == set(digests)
