"""Tests for fairness, speedup and statistics metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    arithmetic_mean,
    box_stats,
    execution_slowdown,
    fairness_improvement,
    geometric_mean,
    harmonic_speedup,
    memory_slowdown,
    normalized_weighted_speedup,
    percentile,
    relative_improvement,
    unfairness_index,
    weighted_speedup,
)


class TestFairnessMetrics:
    def test_memory_slowdown_ratio(self):
        assert memory_slowdown(2.0, 1.0) == pytest.approx(2.0, rel=1e-6)

    def test_memory_slowdown_handles_zero_alone(self):
        assert memory_slowdown(1.0, 0.0) > 1.0

    def test_memory_slowdown_rejects_negative(self):
        with pytest.raises(ValueError):
            memory_slowdown(-1.0, 1.0)

    def test_unfairness_index(self):
        assert unfairness_index([2.0, 1.0]) == pytest.approx(2.0)
        assert unfairness_index([1.5, 1.5, 1.5]) == pytest.approx(1.0)

    def test_unfairness_validation(self):
        with pytest.raises(ValueError):
            unfairness_index([])
        with pytest.raises(ValueError):
            unfairness_index([1.0, 0.0])

    def test_execution_slowdown(self):
        assert execution_slowdown(200, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            execution_slowdown(0, 100)

    def test_fairness_improvement(self):
        assert fairness_improvement(2.0, 1.5) == pytest.approx(0.25)


class TestSpeedupMetrics:
    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_normalized_weighted_speedup(self):
        assert normalized_weighted_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_harmonic_speedup_leq_arithmetic(self):
        shared, alone = [1.0, 3.0], [2.0, 3.0]
        assert harmonic_speedup(shared, alone) <= weighted_speedup(shared, alone) / 2 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == pytest.approx(2.5)

    def test_box_stats(self):
        box = box_stats([1.0, 2.0, 3.0, 4.0, 100.0])
        assert box.minimum == 1.0
        assert box.maximum == 100.0
        assert box.q1 <= box.median <= box.q3
        assert box.upper_whisker == pytest.approx(box.q3 + 1.5 * box.interquartile_range)

    def test_relative_improvement(self):
        assert relative_improvement(2.0, 1.5) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            relative_improvement(0.0, 1.0)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30))
def test_unfairness_at_least_one_property(slowdowns):
    assert unfairness_index(slowdowns) >= 1.0


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30))
def test_box_stats_ordering_property(values):
    box = box_stats(values)
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10),
    st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10),
)
def test_weighted_speedup_bounds_property(shared, alone):
    n = min(len(shared), len(alone))
    shared, alone = shared[:n], alone[:n]
    value = weighted_speedup(shared, alone)
    assert 0 < value
    assert normalized_weighted_speedup(shared, alone) == pytest.approx(value / n)
