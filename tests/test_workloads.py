"""Tests for workload specifications, suites, generators and mixes."""

import pytest

from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization
from repro.workloads import (
    ALL_APPLICATIONS,
    PAPER_FIGURE_APPS,
    ApplicationSpec,
    RNGBenchmarkSpec,
    WorkloadMix,
    application,
    applications_by_category,
    build_traces,
    dual_core_mixes,
    four_core_group_mixes,
    generate_application_trace,
    generate_rng_trace,
    generate_streaming_trace,
    motivation_mixes,
    multi_core_group_mixes,
    representative_subset,
    standard_rng_benchmark,
)


class TestApplicationSpec:
    def test_categories(self):
        assert ApplicationSpec("a", mpki=0.5).category == "L"
        assert ApplicationSpec("b", mpki=5.0).category == "M"
        assert ApplicationSpec("c", mpki=25.0).category == "H"

    def test_validation(self):
        with pytest.raises(ValueError):
            ApplicationSpec("a", mpki=-1)
        with pytest.raises(ValueError):
            ApplicationSpec("a", mpki=1, row_locality=1.5)
        with pytest.raises(ValueError):
            ApplicationSpec("a", mpki=1, footprint_rows=0)


class TestRNGBenchmarkSpec:
    def test_gap_scales_inversely_with_throughput(self):
        low = RNGBenchmarkSpec("low", throughput_mbps=640.0)
        high = RNGBenchmarkSpec("high", throughput_mbps=5120.0)
        assert low.instructions_between_requests == 8 * high.instructions_between_requests

    def test_is_rng_category(self):
        spec = standard_rng_benchmark(5120.0)
        assert spec.is_rng
        assert spec.category == "S"

    def test_validation(self):
        with pytest.raises(ValueError):
            RNGBenchmarkSpec("x", throughput_mbps=0)
        with pytest.raises(ValueError):
            RNGBenchmarkSpec("x", throughput_mbps=100, burst_length=0)


class TestSuites:
    def test_roster_size(self):
        assert len(ALL_APPLICATIONS) == 43
        assert len(PAPER_FIGURE_APPS) == 23

    def test_unique_names(self):
        names = [app.name for app in ALL_APPLICATIONS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert application("mcf").category == "H"
        with pytest.raises(KeyError):
            application("not-a-benchmark")

    def test_all_categories_populated(self):
        groups = applications_by_category()
        assert all(groups[c] for c in ("L", "M", "H"))
        assert sum(len(v) for v in groups.values()) == len(ALL_APPLICATIONS)

    def test_representative_subset(self):
        subset = representative_subset(6)
        assert len(subset) == 6
        categories = {app.category for app in subset}
        assert len(categories) >= 2

    def test_representative_subset_bounds(self):
        assert len(representative_subset(100)) == len(PAPER_FIGURE_APPS)
        with pytest.raises(ValueError):
            representative_subset(0)


class TestSyntheticTraces:
    def test_mpki_approximately_matches_spec(self):
        spec = ApplicationSpec("t", mpki=10.0, row_locality=0.5)
        trace = generate_application_trace(spec, 50_000, seed=0)
        assert trace.mpki == pytest.approx(10.0, rel=0.35)

    def test_deterministic_given_seed(self):
        spec = ApplicationSpec("t", mpki=5.0)
        a = generate_application_trace(spec, 5_000, seed=3)
        b = generate_application_trace(spec, 5_000, seed=3)
        assert a.entries == b.entries

    def test_different_seeds_differ(self):
        spec = ApplicationSpec("t", mpki=5.0)
        a = generate_application_trace(spec, 5_000, seed=1)
        b = generate_application_trace(spec, 5_000, seed=2)
        assert a.entries != b.entries

    def test_zero_mpki_is_compute_only(self):
        spec = ApplicationSpec("t", mpki=0.0)
        trace = generate_application_trace(spec, 1_000)
        assert trace.memory_reads == 0
        assert trace.total_instructions == 1_000

    def test_row_offset_shifts_rows(self):
        spec = ApplicationSpec("t", mpki=20.0, row_locality=0.0, footprint_rows=16)
        mapping = AddressMapping(DRAMOrganization())
        trace = generate_application_trace(spec, 2_000, seed=0, mapping=mapping, row_offset=1000)
        rows = {mapping.decode(e.address).row for e in trace.entries if e.address is not None}
        assert all(1000 <= row < 1016 for row in rows)

    def test_write_fraction_produces_writes(self):
        spec = ApplicationSpec("t", mpki=20.0, write_fraction=0.5)
        trace = generate_application_trace(spec, 20_000, seed=0)
        assert trace.memory_writes > 0
        assert trace.memory_writes < trace.memory_reads

    def test_streaming_trace_is_sequential(self):
        mapping = AddressMapping(DRAMOrganization())
        trace = generate_streaming_trace("stream", 5_000, mapping=mapping)
        addresses = [e.address for e in trace.entries if e.address is not None]
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas == {mapping.block_size}

    def test_invalid_instructions(self):
        with pytest.raises(ValueError):
            generate_application_trace(ApplicationSpec("t", mpki=1.0), 0)


class TestRNGTraces:
    def test_requests_arrive_in_bursts(self):
        spec = RNGBenchmarkSpec("r", throughput_mbps=5120.0, burst_length=4)
        trace = generate_rng_trace(spec, 60_000, seed=0)
        assert trace.rng_requests >= 4
        assert trace.rng_requests % 4 == 0

    def test_average_request_rate_matches_throughput(self):
        spec = RNGBenchmarkSpec("r", throughput_mbps=5120.0)
        trace = generate_rng_trace(spec, 100_000, seed=0)
        expected = 100_000 / spec.instructions_between_requests
        assert trace.rng_requests == pytest.approx(expected, rel=0.25)

    def test_lower_throughput_means_fewer_requests(self):
        high = generate_rng_trace(RNGBenchmarkSpec("h", throughput_mbps=5120.0), 100_000, seed=0)
        low = generate_rng_trace(RNGBenchmarkSpec("l", throughput_mbps=640.0), 100_000, seed=0)
        assert low.rng_requests < high.rng_requests


class TestWorkloadMixes:
    def test_dual_core_mixes_structure(self):
        mixes = dual_core_mixes()
        assert len(mixes) == len(PAPER_FIGURE_APPS)
        for mix in mixes:
            assert mix.num_cores == 2
            assert mix.rng_slots == [1]
            assert mix.non_rng_slots == [0]

    def test_motivation_mixes_count(self):
        mixes = motivation_mixes()
        assert len(mixes) == 4 * len(ALL_APPLICATIONS)

    def test_four_core_groups(self):
        groups = four_core_group_mixes(workloads_per_group=3, seed=1)
        assert set(groups) == {"LLLS", "LLHS", "LHHS", "HHHS"}
        for label, mixes in groups.items():
            assert len(mixes) == 3
            for mix in mixes:
                assert mix.num_cores == 4
                assert mix.category_signature == label

    def test_multi_core_groups(self):
        groups = multi_core_group_mixes(8, workloads_per_group=2, seed=0)
        assert set(groups) == {"L", "M", "H"}
        for label, mixes in groups.items():
            for mix in mixes:
                assert mix.num_cores == 8
                assert len(mix.rng_slots) == 1

    def test_build_traces_matches_mix(self):
        mix = dual_core_mixes()[0]
        traces = build_traces(mix, 5_000, seed=0)
        assert len(traces) == 2
        assert traces[0].rng_requests == 0
        assert traces[1].rng_requests > 0

    def test_workload_mix_validation(self):
        with pytest.raises(ValueError):
            WorkloadMix(name="empty", slots=[])
