"""Tests for the RNG-aware queue policy and the application registry."""

import pytest

from repro.controller.config import ControllerConfig
from repro.controller.memory_controller import ChannelController
from repro.controller.request import make_read, make_rng
from repro.core.rng_scheduler import ApplicationRegistry, RNGAwareQueuePolicy
from repro.dram.dram_system import DRAMSystem
from repro.trng.drange import DRaNGe


def build_controller(registry, stall_limit=100):
    dram = DRAMSystem()
    policy = RNGAwareQueuePolicy(registry, stall_limit=stall_limit)
    controller = ChannelController(
        channel=dram.channels[0],
        dram=dram,
        config=ControllerConfig(),
        trng=DRaNGe(),
        queue_policy=policy,
        separate_rng_queue=True,
    )
    return dram, controller, policy


def addr(dram, bank=0, row=0, column=0):
    return dram.mapping.encode(channel=0, bank=bank, row=row, column=column)


class TestApplicationRegistry:
    def test_default_priority_zero(self):
        registry = ApplicationRegistry()
        assert registry.priority(5) == 0

    def test_set_and_get_priority(self):
        registry = ApplicationRegistry({0: 2})
        registry.set_priority(1, 3)
        assert registry.priority(0) == 2
        assert registry.priority(1) == 3

    def test_rng_application_marking(self):
        registry = ApplicationRegistry()
        assert not registry.is_rng_application(0)
        registry.mark_rng_application(0)
        assert registry.is_rng_application(0)
        assert registry.rng_applications == {0}


class TestQueueSelection:
    def test_empty_queues_return_none(self):
        registry = ApplicationRegistry()
        dram, controller, policy = build_controller(registry)
        assert policy.select(controller, 0) is None

    def test_only_regular_queue(self):
        registry = ApplicationRegistry()
        dram, controller, policy = build_controller(registry)
        read = make_read(addr(dram), 0, 0)
        controller.read_queue.push(read)
        queue, request = policy.select(controller, 0)
        assert request is read

    def test_only_rng_queue(self):
        registry = ApplicationRegistry()
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        rng = make_rng(16, 1, 0)
        controller.rng_queue.push(rng)
        queue, request = policy.select(controller, 0)
        assert request is rng

    def test_rng_prioritized_when_rng_app_has_higher_priority(self):
        registry = ApplicationRegistry({0: 0, 1: 1})
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        read = make_read(addr(dram), 0, cycle=0)
        rng = make_rng(16, 1, cycle=5)
        controller.read_queue.push(read)
        controller.rng_queue.push(rng)
        queue, request = policy.select(controller, 10)
        assert request is rng
        assert policy.stats.rng_queue_choices == 1

    def test_non_rng_prioritized_when_it_has_higher_priority(self):
        registry = ApplicationRegistry({0: 1, 1: 0})
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        read = make_read(addr(dram), 0, cycle=5)
        rng = make_rng(16, 1, cycle=0)
        controller.read_queue.push(read)
        controller.rng_queue.push(rng)
        queue, request = policy.select(controller, 10)
        assert request is read

    def test_non_rng_prioritized_exception_for_rng_apps_own_read(self):
        # The regular queue's oldest request belongs to the RNG app and is
        # younger than the RNG request -> the RNG queue is served first,
        # even though the non-RNG application has the higher priority.
        registry = ApplicationRegistry({0: 1, 1: 0})
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        rng = make_rng(16, 1, cycle=0)
        rng_apps_read = make_read(addr(dram), 1, cycle=5)
        non_rng_read = make_read(addr(dram, bank=1, row=1), 0, cycle=8)
        controller.rng_queue.push(rng)
        controller.read_queue.push(rng_apps_read)
        controller.read_queue.push(non_rng_read)
        queue, request = policy.select(controller, 10)
        assert request is rng
        assert policy.stats.priority_inversions_prevented == 1

    def test_equal_priority_older_regular_read_goes_first(self):
        registry = ApplicationRegistry()
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        read = make_read(addr(dram), 0, cycle=0)
        rng = make_rng(16, 1, cycle=5)
        controller.read_queue.push(read)
        controller.rng_queue.push(rng)
        queue, request = policy.select(controller, 10)
        assert request is read

    def test_equal_priority_tie_goes_to_rng(self):
        registry = ApplicationRegistry()
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        rng = make_rng(16, 1, cycle=0)
        read = make_read(addr(dram), 0, cycle=5)
        controller.rng_queue.push(rng)
        controller.read_queue.push(read)
        queue, request = policy.select(controller, 10)
        assert request is rng

    def test_equal_priority_row_hit_served_first(self):
        registry = ApplicationRegistry()
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry)
        controller.channel.service_access(0, 7, now=0)  # open row 7
        rng = make_rng(16, 1, cycle=0)
        hit = make_read(addr(dram, bank=0, row=7, column=2), 0, cycle=5)
        controller.rng_queue.push(rng)
        controller.read_queue.push(hit)
        queue, request = policy.select(controller, 10)
        assert request is hit


class TestStarvationPrevention:
    def test_deprioritized_queue_served_after_stall_limit(self):
        registry = ApplicationRegistry({0: 0, 1: 1})
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry, stall_limit=50)
        read = make_read(addr(dram), 0, cycle=0)
        controller.read_queue.push(read)
        controller.rng_queue.push(make_rng(16, 1, cycle=0))
        controller.rng_queue.push(make_rng(16, 1, cycle=1))

        queue, first = policy.select(controller, 10)
        assert first.is_rng  # RNG app has priority
        # After the stall limit elapses, the starved regular read is chosen.
        queue, second = policy.select(controller, 10 + 60)
        assert second is read
        assert policy.stats.starvation_interventions == 1

    def test_no_intervention_before_limit(self):
        registry = ApplicationRegistry({0: 0, 1: 1})
        registry.mark_rng_application(1)
        dram, controller, policy = build_controller(registry, stall_limit=100)
        controller.read_queue.push(make_read(addr(dram), 0, cycle=0))
        controller.rng_queue.push(make_rng(16, 1, cycle=0))
        queue, request = policy.select(controller, 10)
        assert request.is_rng
        queue, request = policy.select(controller, 50)
        assert request.is_rng
        assert policy.stats.starvation_interventions == 0

    def test_invalid_stall_limit(self):
        with pytest.raises(ValueError):
            RNGAwareQueuePolicy(ApplicationRegistry(), stall_limit=0)
