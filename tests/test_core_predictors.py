"""Tests for the DRAM idleness predictors (simple and RL)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.idleness_predictor import PredictorStats, SimpleIdlenessPredictor
from repro.core.rl_predictor import QLearningIdlenessPredictor


ADDRESS = 0x1000


class TestSimplePredictor:
    def test_counter_trains_towards_long(self):
        predictor = SimpleIdlenessPredictor(period_threshold=40, initial_counter=0)
        assert not predictor.predict(ADDRESS)
        for _ in range(3):
            predictor.observe_idle_period(100, ADDRESS)
        assert predictor.predict(ADDRESS)

    def test_counter_trains_towards_short(self):
        predictor = SimpleIdlenessPredictor(period_threshold=40, initial_counter=3)
        assert predictor.predict(ADDRESS)
        for _ in range(4):
            predictor.observe_idle_period(5, ADDRESS)
        assert not predictor.predict(ADDRESS)

    def test_counters_saturate(self):
        predictor = SimpleIdlenessPredictor(initial_counter=3)
        for _ in range(10):
            predictor.observe_idle_period(100, ADDRESS)
        assert predictor.table[predictor._index(ADDRESS)] == 3
        for _ in range(10):
            predictor.observe_idle_period(1, ADDRESS)
        assert predictor.table[predictor._index(ADDRESS)] == 0

    def test_different_addresses_use_different_entries(self):
        predictor = SimpleIdlenessPredictor(table_entries=256, initial_counter=1)
        predictor.observe_idle_period(100, 0)
        predictor.observe_idle_period(100, 64)
        assert predictor.table[predictor._index(0)] == 2
        assert predictor.table[predictor._index(64)] == 2
        assert predictor.table[predictor._index(128)] == 1

    def test_accuracy_accounting(self):
        predictor = SimpleIdlenessPredictor(period_threshold=40, initial_counter=3)
        predictor.predict_and_record(ADDRESS)        # predicts long
        predictor.observe_idle_period(100, ADDRESS)  # was long -> TP
        predictor.predict_and_record(ADDRESS)        # predicts long
        predictor.observe_idle_period(5, ADDRESS)    # was short -> FP
        stats = predictor.stats
        assert stats.true_positives == 1
        assert stats.false_positives == 1
        assert stats.accuracy == pytest.approx(0.5)

    def test_unconsulted_periods_do_not_count_towards_accuracy(self):
        predictor = SimpleIdlenessPredictor()
        predictor.observe_idle_period(100, ADDRESS)
        assert predictor.stats.predictions == 0

    def test_storage_cost(self):
        assert SimpleIdlenessPredictor(table_entries=256).storage_bits == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleIdlenessPredictor(period_threshold=0)
        with pytest.raises(ValueError):
            SimpleIdlenessPredictor(table_entries=0)
        with pytest.raises(ValueError):
            SimpleIdlenessPredictor(initial_counter=7)


class TestRLPredictor:
    def test_learns_to_generate_in_long_periods(self):
        predictor = QLearningIdlenessPredictor(learning_rate=0.3, history_bits=4)
        for _ in range(50):
            predictor.predict(ADDRESS)
            predictor.observe_idle_period(200, ADDRESS)
        assert predictor.predict(ADDRESS)

    def test_learns_to_wait_in_short_periods(self):
        predictor = QLearningIdlenessPredictor(learning_rate=0.3, history_bits=4)
        for _ in range(80):
            predictor.predict(ADDRESS)
            predictor.observe_idle_period(3, ADDRESS)
        assert not predictor.predict(ADDRESS)

    def test_history_register_updates(self):
        predictor = QLearningIdlenessPredictor(history_bits=4)
        predictor.observe_idle_period(200, ADDRESS)
        assert predictor.history & 1 == 1
        predictor.observe_idle_period(2, ADDRESS)
        assert predictor.history & 1 == 0

    def test_q_update_moves_towards_reward(self):
        predictor = QLearningIdlenessPredictor(learning_rate=0.5, history_bits=4)
        predictor.predict(ADDRESS)
        state, action = predictor._last_state, predictor._last_action
        before = predictor.q_table[state, action]
        predictor.observe_idle_period(200, ADDRESS)
        after = predictor.q_table[state, action]
        assert after != before

    def test_accuracy_accounting(self):
        predictor = QLearningIdlenessPredictor()
        predictor.predict_and_record(ADDRESS)
        predictor.observe_idle_period(200, ADDRESS)
        assert predictor.stats.predictions == 1

    def test_storage_cost_matches_paper_order(self):
        predictor = QLearningIdlenessPredictor(history_bits=10)
        assert predictor.storage_bits == 1024 * 2 * 32  # 8 KB

    def test_validation(self):
        with pytest.raises(ValueError):
            QLearningIdlenessPredictor(learning_rate=0.0)
        with pytest.raises(ValueError):
            QLearningIdlenessPredictor(history_bits=0)


class TestPredictorStats:
    def test_rates(self):
        stats = PredictorStats(true_positives=6, false_positives=2, true_negatives=1, false_negatives=1)
        assert stats.predictions == 10
        assert stats.accuracy == pytest.approx(0.7)
        assert stats.false_positive_rate == pytest.approx(2 / 3)
        assert stats.false_negative_rate == pytest.approx(1 / 7)

    def test_empty(self):
        stats = PredictorStats()
        assert stats.accuracy == 0.0
        assert stats.false_positive_rate == 0.0


@settings(max_examples=100, deadline=None)
@given(
    periods=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=100),
    addresses=st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=100),
)
def test_simple_predictor_counters_stay_in_range(periods, addresses):
    predictor = SimpleIdlenessPredictor()
    for period, address in zip(periods, addresses):
        predictor.predict_and_record(address * 64)
        predictor.observe_idle_period(period, address * 64)
    assert all(0 <= counter <= 3 for counter in predictor.table)
    stats = predictor.stats
    assert stats.predictions == min(len(periods), len(addresses))
