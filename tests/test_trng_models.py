"""Tests for the DRAM TRNG mechanism models."""

import pytest

from repro.trng import DRaNGe, ParametricTRNG, QUACTRNG, make_trng


class TestDRaNGe:
    def test_throughput_matches_paper(self):
        assert DRaNGe().throughput_mbps == pytest.approx(563.0)

    def test_batch_yields_one_bit_per_bank(self):
        trng = DRaNGe()
        assert trng.bits_per_batch(8) == 8
        assert trng.bits_per_batch(16) == 16

    def test_batch_latency_is_period_threshold(self):
        assert DRaNGe().batch_latency_cycles == 40

    def test_64bit_demand_latency_close_to_198_cycles(self):
        trng = DRaNGe()
        latency = trng.demand_latency_cycles(16, num_channels=4)
        assert 180 <= latency <= 220

    def test_demand_latency_monotonic_in_bits(self):
        trng = DRaNGe()
        assert trng.demand_latency_cycles(32, 4) > trng.demand_latency_cycles(16, 4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DRaNGe(throughput_mbps=0)
        with pytest.raises(ValueError):
            DRaNGe(batch_latency_cycles=0)
        with pytest.raises(ValueError):
            DRaNGe().bits_per_batch(0)
        with pytest.raises(ValueError):
            DRaNGe().demand_latency_cycles(0, 4)


class TestQUACTRNG:
    def test_higher_throughput_than_drange(self):
        assert QUACTRNG().throughput_mbps > DRaNGe().throughput_mbps

    def test_higher_64bit_latency_than_drange(self):
        quac_latency = QUACTRNG().demand_latency_cycles(16, 4)
        drange_latency = DRaNGe().demand_latency_cycles(16, 4)
        assert quac_latency > drange_latency

    def test_bigger_fill_batches_than_drange(self):
        assert QUACTRNG().bits_per_batch(8) > DRaNGe().bits_per_batch(8)


class TestParametricTRNG:
    def test_fill_batch_scales_with_throughput(self):
        low = ParametricTRNG(throughput_mbps=200.0)
        high = ParametricTRNG(throughput_mbps=6400.0)
        assert high.bits_per_batch(8) > low.bits_per_batch(8)

    def test_demand_latency_decreases_then_saturates(self):
        throughputs = [200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0]
        latencies = [
            ParametricTRNG(throughput_mbps=t).demand_latency_cycles(16, 4) for t in throughputs
        ]
        assert all(a >= b for a, b in zip(latencies, latencies[1:]))
        # Saturation: the last doubling of throughput changes latency by < 10%.
        assert latencies[-2] - latencies[-1] <= 0.1 * latencies[-2]

    def test_name_with_throughput(self):
        assert "3200" in ParametricTRNG(throughput_mbps=3200.0).name_with_throughput


class TestSharedBehaviour:
    def test_per_channel_rate_positive(self):
        for trng in (DRaNGe(), QUACTRNG(), ParametricTRNG(800.0)):
            assert trng.per_channel_bits_per_cycle(4) > 0

    def test_generate_bits_count(self):
        trng = DRaNGe()
        bits = trng.generate_bits(256)
        assert len(bits) == 256
        assert set(bits.tolist()) <= {0, 1}

    def test_generate_integer_in_range(self):
        value = DRaNGe().generate_integer(32)
        assert 0 <= value < 2**32


class TestFactory:
    def test_make_trng_names(self):
        assert isinstance(make_trng("d-range"), DRaNGe)
        assert isinstance(make_trng("quac-trng"), QUACTRNG)
        assert isinstance(make_trng("parametric", throughput_mbps=800.0), ParametricTRNG)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_trng("unknown-trng")
