"""Tests for physical address mapping, including a round-trip property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization


@pytest.fixture
def mapping():
    return AddressMapping(DRAMOrganization())


class TestAddressMapping:
    def test_encode_decode_identity(self, mapping):
        address = mapping.encode(channel=2, bank=5, row=1234, column=17)
        decoded = mapping.decode(address)
        assert decoded.channel == 2
        assert decoded.bank == 5
        assert decoded.row == 1234
        assert decoded.column == 17

    def test_block_alignment(self, mapping):
        address = mapping.encode(channel=1, bank=1, row=1, column=1)
        assert address % mapping.block_size == 0

    def test_consecutive_blocks_interleave_channels(self, mapping):
        org = mapping.organization
        base = mapping.encode(channel=0, bank=0, row=0, column=0)
        channels = [mapping.decode(base + i * mapping.block_size).channel for i in range(org.channels)]
        assert sorted(channels) == list(range(org.channels))

    def test_channel_of_matches_decode(self, mapping):
        for address in (0, 64, 4096, 123456 * 64):
            assert mapping.channel_of(address) == mapping.decode(address).channel

    def test_same_row_accesses_stay_in_bank(self, mapping):
        a = mapping.encode(channel=0, bank=3, row=42, column=0)
        b = mapping.encode(channel=0, bank=3, row=42, column=5)
        da, db = mapping.decode(a), mapping.decode(b)
        assert (da.channel, da.bank, da.row) == (db.channel, db.bank, db.row)
        assert da.column != db.column

    def test_negative_address_rejected(self, mapping):
        with pytest.raises(ValueError):
            mapping.decode(-1)

    def test_out_of_range_coordinates_rejected(self, mapping):
        org = mapping.organization
        with pytest.raises(ValueError):
            mapping.encode(channel=org.channels, bank=0, row=0, column=0)
        with pytest.raises(ValueError):
            mapping.encode(channel=0, bank=org.banks_per_rank, row=0, column=0)
        with pytest.raises(ValueError):
            mapping.encode(channel=0, bank=0, row=org.rows_per_bank, column=0)
        with pytest.raises(ValueError):
            mapping.encode(channel=0, bank=0, row=0, column=org.columns_per_row)

    def test_bank_id_flattens_rank_and_bank(self, mapping):
        decoded = mapping.decode(mapping.encode(channel=0, bank=6, row=0, column=0))
        assert decoded.bank_id(mapping.organization) == 6

    def test_block_index(self, mapping):
        assert mapping.block_index(0) == 0
        assert mapping.block_index(64) == 1
        assert mapping.block_index(130) == 2


@settings(max_examples=200, deadline=None)
@given(
    channel=st.integers(min_value=0, max_value=3),
    bank=st.integers(min_value=0, max_value=7),
    row=st.integers(min_value=0, max_value=65535),
    column=st.integers(min_value=0, max_value=127),
)
def test_encode_decode_roundtrip_property(channel, bank, row, column):
    mapping = AddressMapping(DRAMOrganization())
    decoded = mapping.decode(mapping.encode(channel=channel, bank=bank, row=row, column=column))
    assert (decoded.channel, decoded.bank, decoded.row, decoded.column) == (
        channel,
        bank,
        row,
        column,
    )


@settings(max_examples=200, deadline=None)
@given(block=st.integers(min_value=0, max_value=2**26))
def test_decode_encode_roundtrip_property(block):
    mapping = AddressMapping(DRAMOrganization())
    address = block * mapping.block_size
    decoded = mapping.decode(address)
    rebuilt = mapping.encode(
        channel=decoded.channel,
        bank=decoded.bank,
        row=decoded.row,
        column=decoded.column,
        rank=decoded.rank,
    )
    assert rebuilt == address
