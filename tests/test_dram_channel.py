"""Tests for the DRAM channel device model."""

import pytest

from repro.dram.bank import AccessCategory
from repro.dram.channel import Channel
from repro.dram.dram_system import DRAMSystem
from repro.dram.timing import DRAMOrganization, DRAMTiming


@pytest.fixture
def channel():
    return Channel(0, DRAMTiming(), DRAMOrganization())


class TestServiceAccess:
    def test_row_hit_faster_than_miss(self, channel):
        timing = channel.timing
        end_miss, cat_miss = channel.service_access(0, 10, now=0)
        assert cat_miss is AccessCategory.ROW_CLOSED
        start2 = end_miss + 100
        end_hit, cat_hit = channel.service_access(0, 10, now=start2)
        assert cat_hit is AccessCategory.ROW_HIT
        assert (end_hit - start2) < (end_miss - 0)
        assert end_hit - start2 >= timing.row_hit_latency

    def test_bus_serialises_transfers(self, channel):
        end_a, _ = channel.service_access(0, 1, now=0)
        end_b, _ = channel.service_access(1, 1, now=0)
        # Different banks prepare in parallel but their bursts cannot overlap.
        assert end_b >= end_a + channel.timing.tBL

    def test_bank_conflict_penalty(self, channel):
        channel.service_access(0, 1, now=0)
        end_conflict, category = channel.service_access(0, 2, now=1000)
        assert category is AccessCategory.ROW_CONFLICT
        assert end_conflict - 1000 >= channel.timing.row_conflict_latency

    def test_invalid_bank_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.service_access(99, 0, now=0)

    def test_stats_accumulate(self, channel):
        channel.service_access(0, 1, now=0)
        channel.service_access(0, 1, now=100, is_write=True)
        assert channel.stats.read_accesses == 1
        assert channel.stats.write_accesses == 1
        assert channel.stats.total_accesses == 2
        assert 0.0 <= channel.stats.row_hit_rate <= 1.0


class TestRNGOccupancy:
    def test_occupy_blocks_all_banks(self, channel):
        channel.service_access(0, 1, now=0)
        end = channel.occupy_for_rng(now=100, duration=50, bits=8)
        assert end >= 150
        for bank in channel.banks:
            assert bank.open_row is None
            assert bank.ready_at >= end
        assert channel.bus_free_at == end

    def test_occupy_counts_stats(self, channel):
        channel.occupy_for_rng(now=0, duration=40, bits=8)
        channel.occupy_for_rng(now=40, duration=40, bits=8)
        assert channel.stats.rng_operations == 2
        assert channel.stats.rng_cycles == 80
        assert channel.stats.rng_bits_generated == 16

    def test_negative_duration_rejected(self, channel):
        with pytest.raises(ValueError):
            channel.occupy_for_rng(now=0, duration=-1, bits=0)


class TestQueries:
    def test_is_row_hit(self, channel):
        assert not channel.is_row_hit(0, 5)
        channel.service_access(0, 5, now=0)
        assert channel.is_row_hit(0, 5)
        assert not channel.is_row_hit(0, 6)

    def test_is_bus_free(self, channel):
        assert channel.is_bus_free(0)
        end, _ = channel.service_access(0, 1, now=0)
        assert not channel.is_bus_free(end - 1)
        assert channel.is_bus_free(end)

    def test_reset_dynamic_state(self, channel):
        channel.service_access(0, 1, now=0)
        channel.reset_dynamic_state()
        assert channel.bus_free_at == 0
        assert channel.open_row(0) is None
        assert channel.stats.read_accesses == 1  # stats preserved


class TestDRAMSystem:
    def test_channel_count(self):
        dram = DRAMSystem()
        assert dram.num_channels == 4
        assert len(dram.channels) == 4

    def test_channel_of_routes_by_address(self):
        dram = DRAMSystem()
        address = dram.mapping.encode(channel=3, bank=0, row=0, column=0)
        assert dram.channel_of(address).channel_id == 3

    def test_total_stats_aggregates(self):
        dram = DRAMSystem()
        dram.channels[0].service_access(0, 1, now=0)
        dram.channels[2].service_access(0, 1, now=0)
        total = dram.total_stats()
        assert total.read_accesses == 2


class TestInlinedBankStateMachine:
    """Channel.service_access inlines Bank.access for speed; this
    differential sweep pins the two copies together so a fix applied to
    one cannot silently leave the other stale."""

    def test_service_access_matches_bank_access_reference(self):
        from repro.dram.bank import Bank
        from repro.dram.timing import DRAMTiming

        timing = DRAMTiming()
        channel = Channel(0, timing=timing)
        reference = [Bank(b.bank_id, timing) for b in channel.banks]
        # A state sweep over hits, closed banks, conflicts, reads and
        # writes, with bus pressure from interleaved banks.
        accesses = [
            (0, 5, False), (0, 5, False), (0, 9, False), (1, 5, True),
            (0, 9, True), (1, 5, False), (2, 0, False), (0, 9, False),
            (2, 1, True), (2, 1, False),
        ]
        now = 0
        bus_free = 0
        for bank_id, row, is_write in accesses:
            finish, category = channel.service_access(bank_id, row, now, is_write=is_write)
            # Reference computation through Bank.access + the documented
            # completion arithmetic.
            bank = reference[bank_id]
            column_ready, ref_category = bank.access(row, now, is_write=is_write)
            cas = timing.tCWL if is_write else timing.tCL
            data_start = max(column_ready + cas, bus_free)
            data_end = data_start + timing.tBL
            bank.complete_access(data_end + (timing.tWR if is_write else 0))
            bus_free = data_end
            assert (finish, category) == (data_end, ref_category), (bank_id, row, is_write)
            now = finish - timing.tBL // 2  # overlap the next access with the burst
        # Dynamic state agrees too, including the scheduler-facing mirror.
        for bank, ref in zip(channel.banks, reference):
            assert bank.open_row == ref.open_row
            assert bank.ready_at == ref.ready_at
            assert channel.open_rows[bank.bank_id] == ref.open_row
        # And the per-bank counters the energy model consumes.
        for bank, ref in zip(channel.banks, reference):
            assert bank.stats == ref.stats
