"""Tests for the trace-driven core model."""

import pytest

from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import Trace, TraceEntry


class MemoryStub:
    """Configurable memory backend for driving a core in isolation.

    Reads arrive as window slots (the core's ``send_read`` protocol) and
    complete through :meth:`Core.complete_read`; RNG requests keep the
    callback protocol.  Attach the core with ``memory.core = core``
    before ticking (``run_core`` does).
    """

    def __init__(self, read_latency=20, rng_latency=100, accept_reads=True, accept_writes=True):
        self.read_latency = read_latency
        self.rng_latency = rng_latency
        self.accept_reads = accept_reads
        self.accept_writes = accept_writes
        self.pending = []  # (completion_cycle, kind, slot-or-callback)
        self.now = 0
        self.core = None
        self.reads = 0
        self.writes = 0
        self.rng_requests = 0

    def send_read(self, address, core_id, slot):
        if not self.accept_reads:
            return False
        self.reads += 1
        self.pending.append((self.now + self.read_latency, "read", slot))
        return True

    def send_write(self, address, core_id):
        if not self.accept_writes:
            return False
        self.writes += 1
        return True

    def send_rng(self, bits, core_id, callback):
        self.rng_requests += 1
        self.pending.append((self.now + self.rng_latency, "rng", callback))

    def tick(self, now):
        self.now = now
        ready = [entry for entry in self.pending if entry[0] <= now]
        self.pending = [entry for entry in self.pending if entry[0] > now]
        for completion, kind, target in ready:
            if kind == "read":
                self.core.complete_read(target, completion)
            else:
                target(completion)


def run_core(trace, memory=None, max_cycles=10_000, config=None):
    memory = memory or MemoryStub()
    core = Core(
        core_id=0,
        trace=trace,
        send_read=memory.send_read,
        send_write=memory.send_write,
        send_rng=memory.send_rng,
        config=config or CoreConfig(),
    )
    memory.core = core
    cycle = 0
    while not core.finished and cycle < max_cycles:
        memory.tick(cycle)
        core.tick(cycle)
        cycle += 1
    return core, memory


class TestComputeOnly:
    def test_pure_bubbles_finish_at_peak_issue_rate(self):
        trace = Trace([TraceEntry(bubbles=1500)])
        core, _ = run_core(trace)
        assert core.finished
        expected_minimum = 1500 // CoreConfig().slots_per_bus_cycle
        assert core.finish_cycle >= expected_minimum - 1
        assert core.finish_cycle <= expected_minimum + 5
        assert core.result_stats().memory_stall_cycles == 0

    def test_instruction_count_matches_target(self):
        trace = Trace([TraceEntry(bubbles=100)])
        core, _ = run_core(trace)
        assert core.result_stats().instructions >= 100


class TestMemoryBehaviour:
    def test_reads_are_sent_and_counted(self):
        trace = Trace([TraceEntry(bubbles=10, address=64 * i) for i in range(5)])
        core, memory = run_core(trace)
        # The core wraps its trace while draining the window, so at least
        # (possibly more than) the trace's five reads are issued.
        assert memory.reads >= 5
        assert core.result_stats().reads_issued >= 5

    def test_memory_latency_slows_execution(self):
        entries = [TraceEntry(bubbles=2, address=64 * i) for i in range(20)]
        fast_core, _ = run_core(Trace(entries), MemoryStub(read_latency=5))
        slow_core, _ = run_core(Trace(entries), MemoryStub(read_latency=400))
        assert slow_core.finish_cycle > fast_core.finish_cycle
        assert slow_core.result_stats().memory_stall_cycles > 0

    def test_window_limits_outstanding_reads(self):
        config = CoreConfig(window_size=4)
        entries = [TraceEntry(bubbles=0, address=64 * i) for i in range(50)]
        core, memory = run_core(Trace(entries), MemoryStub(read_latency=10_000), config=config)
        # Core cannot finish: the window is full of incomplete reads.
        assert not core.finished
        assert core.outstanding_window_entries <= 4

    def test_writes_are_fire_and_forget(self):
        trace = Trace([TraceEntry(bubbles=5, address=64, write_address=128)])
        core, memory = run_core(trace)
        assert memory.writes >= 1
        assert core.result_stats().writes_issued >= 1
        assert core.finished  # the write never blocks retirement

    def test_write_backpressure_blocks_issue(self):
        trace = Trace([TraceEntry(bubbles=5, address=64, write_address=128), TraceEntry(bubbles=50)])
        core, memory = run_core(trace, MemoryStub(accept_writes=False), max_cycles=200)
        assert not core.finished

    def test_read_latency_recorded(self):
        trace = Trace([TraceEntry(bubbles=1, address=64), TraceEntry(bubbles=3000)])
        core, _ = run_core(trace, MemoryStub(read_latency=37))
        # The first read's completion latency is accumulated in the stats.
        assert core.stats.read_latency_sum >= 37


class TestRNGBehaviour:
    def test_rng_requests_sent(self):
        trace = Trace([TraceEntry(bubbles=10, rng_bits=64) for _ in range(3)])
        core, memory = run_core(trace)
        assert memory.rng_requests >= 3
        assert core.result_stats().rng_requests >= 3

    def test_rng_latency_stalls_core(self):
        entries = [TraceEntry(bubbles=0, rng_bits=64), TraceEntry(bubbles=300)]
        fast, _ = run_core(Trace(entries), MemoryStub(rng_latency=5))
        slow, _ = run_core(Trace(entries), MemoryStub(rng_latency=500))
        assert slow.finish_cycle > fast.finish_cycle
        assert slow.result_stats().rng_stall_cycles > 0

    def test_rng_marked_application(self):
        rng_trace = Trace([TraceEntry(bubbles=1, rng_bits=64)])
        plain_trace = Trace([TraceEntry(bubbles=1)])
        memory = MemoryStub()
        rng_core = Core(0, rng_trace, memory.send_read, memory.send_write, memory.send_rng)
        plain_core = Core(1, plain_trace, memory.send_read, memory.send_write, memory.send_rng)
        assert rng_core.is_rng_application
        assert not plain_core.is_rng_application

    def test_burst_issues_multiple_outstanding_rng_requests(self):
        entries = [TraceEntry(bubbles=0, rng_bits=64) for _ in range(4)]
        entries.append(TraceEntry(bubbles=1000))
        core, memory = run_core(Trace(entries), MemoryStub(rng_latency=10_000), max_cycles=50)
        # All four requests should have been issued without waiting for the
        # first to complete (non-blocking issue within the window).
        assert memory.rng_requests == 4


class TestFinishSemantics:
    def test_stats_frozen_at_finish(self):
        trace = Trace([TraceEntry(bubbles=50, address=64)])
        core, memory = run_core(trace)
        frozen = core.result_stats().instructions
        for cycle in range(core.finish_cycle + 1, core.finish_cycle + 200):
            memory.tick(cycle)
            core.tick(cycle)
        assert core.result_stats().instructions == frozen

    def test_core_wraps_trace_after_finish(self):
        trace = Trace([TraceEntry(bubbles=2, address=64)])
        core, memory = run_core(trace)
        reads_at_finish = memory.reads
        for cycle in range(core.finish_cycle + 1, core.finish_cycle + 500):
            memory.tick(cycle)
            core.tick(cycle)
        assert memory.reads > reads_at_finish

    def test_invalid_target(self):
        trace = Trace([TraceEntry(bubbles=5)])
        memory = MemoryStub()
        with pytest.raises(ValueError):
            Core(0, trace, memory.send_read, memory.send_write, memory.send_rng, target_instructions=0)


class TestCoreConfig:
    def test_slots_per_bus_cycle(self):
        assert CoreConfig(issue_width=3, clock_ratio=5).slots_per_bus_cycle == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)
        with pytest.raises(ValueError):
            CoreConfig(window_size=0)
        with pytest.raises(ValueError):
            CoreConfig(clock_ratio=0)
