"""Tests for the sweep service: fairness policy, job protocol, equivalence.

Covers the :class:`~repro.distributed.fairness.TenantScheduler` policy
in isolation (consecutive-service quantum, blacklisting, periodic
clearing), the service's submit/poll/cancel/jobs protocol including its
error paths, service-level fairness observed through the ``job`` field
of work grants — and the acceptance bar: two concurrent clients sharing
one worker fleet get results byte-identical to serial runs, with
overlapping points simulated exactly once.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.distributed import (
    Coordinator,
    ServiceError,
    SweepClient,
    SweepService,
    TenantScheduler,
    run_worker,
)
from repro.distributed.protocol import (
    decode_message,
    encode_message,
    hello_message,
    peer_features,
)
from repro.orchestration import (
    InMemoryResultStore,
    SweepRequest,
    canonical_data,
    sweep_experiments,
)
from tests.test_distributed import make_unit

#: Service knobs tuned so fault-handling paths fire inside a test run.
FAST = dict(lease_timeout=0.4, straggler_timeout=0.3, retry_seconds=0.05)


# ----------------------------------------------------------------- scheduler


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_scheduler(**kwargs):
    clock = FakeClock()
    scheduler = TenantScheduler(clock=clock, **kwargs)
    return scheduler, clock


class TestTenantScheduler:
    def test_quantum_blacklists_after_consecutive_service(self):
        scheduler, _ = make_scheduler(service_quantum=3)
        scheduler.add_job("batch", priority="batch")
        scheduler.add_job("late", priority="batch")
        # Only `batch` has backlog: it is served quantum times in a row
        # and must be blacklisted on the last grant.
        for grant in range(3):
            assert scheduler.select({"batch": 10, "late": 0}) == "batch"
            scheduler.record_service("batch")
        snapshot = scheduler.snapshot()["jobs"]["batch"]
        assert snapshot["blacklisted"]
        # Once `late` has pending points, the blacklisted job yields even
        # though both share the batch priority class.
        assert scheduler.select({"batch": 10, "late": 5}) == "late"

    def test_blacklist_deprioritises_but_never_blocks(self):
        scheduler, _ = make_scheduler(service_quantum=2)
        scheduler.add_job("only", priority="batch")
        # A lone job keeps receiving grants long past its quantum: the
        # blacklist reorders contenders, it never stalls the fleet.
        for grant in range(10):
            assert scheduler.select({"only": 99}) == "only"
            scheduler.record_service("only")
        assert scheduler.snapshot()["jobs"]["only"]["blacklisted"]

    def test_interactive_beats_batch_regardless_of_history(self):
        scheduler, _ = make_scheduler(service_quantum=4)
        scheduler.add_job("big", priority="batch")
        scheduler.add_job("ui", priority="interactive")
        scheduler.record_service("big")
        # Batch has been running; the moment interactive work is pending
        # it wins every selection until its backlog drains.  (Its streak
        # stays under the quantum here — blacklisting outranks priority,
        # so even an interactive job yields once it monopolises a full
        # quantum.)
        picks = []
        for remaining in (3, 2, 1):
            picks.append(scheduler.select({"big": 100, "ui": remaining}))
            scheduler.record_service(picks[-1])
        assert picks == ["ui"] * 3
        assert scheduler.select({"big": 100, "ui": 0}) == "big"

    def test_clearing_resets_blacklists_and_streaks(self):
        scheduler, clock = make_scheduler(service_quantum=2, clearing_interval=5.0)
        scheduler.add_job("a", priority="batch")
        scheduler.add_job("b", priority="batch")
        scheduler.select({"a": 10, "b": 0})  # arms the clearing timer
        scheduler.record_service("a")
        scheduler.record_service("a")
        assert scheduler.snapshot()["jobs"]["a"]["blacklisted"]
        clock.advance(5.1)
        scheduler.select({"a": 10, "b": 10})  # triggers maybe_clear
        snapshot = scheduler.snapshot()
        assert snapshot["clear_events"] == 1
        assert not snapshot["jobs"]["a"]["blacklisted"]
        assert snapshot["jobs"]["a"]["streak"] == 0

    def test_service_resets_competitors_streaks(self):
        scheduler, _ = make_scheduler(service_quantum=3)
        scheduler.add_job("a", priority="batch")
        scheduler.add_job("b", priority="batch")
        scheduler.record_service("a")
        scheduler.record_service("a")
        scheduler.record_service("b")  # interleaved grant: a's streak resets
        scheduler.record_service("a")
        jobs = scheduler.snapshot()["jobs"]
        assert jobs["a"]["streak"] == 1 and not jobs["a"]["blacklisted"]

    def test_lru_round_robin_within_a_priority_class(self):
        scheduler, _ = make_scheduler()
        scheduler.add_job("a", priority="batch")
        scheduler.add_job("b", priority="batch")
        picks = []
        for _ in range(4):
            picks.append(scheduler.select({"a": 5, "b": 5}))
            scheduler.record_service(picks[-1])
        assert picks == ["a", "b", "a", "b"]

    def test_remove_and_unknown_jobs_are_ignored(self):
        scheduler, _ = make_scheduler()
        scheduler.add_job("a")
        scheduler.remove_job("a")
        scheduler.remove_job("ghost")
        assert scheduler.select({"a": 5, "ghost": 5}) is None

    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            TenantScheduler(service_quantum=0)
        with pytest.raises(ValueError):
            TenantScheduler(clearing_interval=0.0)


# ----------------------------------------------------------------- protocol


class FakeClient:
    """A hand-driven protocol client for exercising the service directly."""

    def __init__(self, address, name="fake-tenant", role="client"):
        self.connection = socket.create_connection(address)
        self.stream = self.connection.makefile("rb")
        self.send(hello_message(name, role=role))
        self.welcome = self.receive()
        assert self.welcome["type"] == "welcome"

    def send(self, payload):
        self.connection.sendall(encode_message(payload))

    def receive(self):
        return decode_message(self.stream.readline())

    def rpc(self, payload):
        self.send(payload)
        return self.receive()

    def submit(self, request, tenant=None):
        payload = {"type": "submit", "request": request.to_wire()}
        if tenant is not None:
            payload["tenant"] = tenant
        return self.rpc(payload)

    def poll_until(self, job_id, states, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            reply = self.rpc({"type": "poll", "job": job_id})
            if reply.get("state") in states:
                return reply
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never reached {states}")

    def lease_work(self, attempts=100):
        for _ in range(attempts):
            reply = self.rpc({"type": "lease"})
            if reply["type"] in ("work", "done"):
                return reply
            time.sleep(reply.get("seconds", 0.05))
        raise AssertionError("service never handed out work")

    def close(self):
        try:
            self.connection.close()
        except OSError:
            pass


@pytest.fixture
def service():
    store = InMemoryResultStore()
    svc = SweepService(store, **FAST)
    address = svc.start()
    try:
        yield svc, address, store
    finally:
        svc.stop()


FIG5 = SweepRequest(experiments=("fig5",), instructions=1500)
FIG6 = SweepRequest(experiments=("fig6",), instructions=1500)
BOTH = SweepRequest(experiments=("fig5", "fig6"), instructions=1500)


class TestServiceProtocol:
    def test_welcome_advertises_jobs_feature(self, service):
        _, address, _ = service
        client = FakeClient(address)
        assert "jobs" in peer_features(client.welcome)
        client.close()

    def test_submit_rejects_unknown_experiment(self, service):
        _, address, _ = service
        client = FakeClient(address)
        bad = {"type": "submit", "request": {"experiments": ["nope"]}}
        reply = client.rpc(bad)
        assert reply["type"] == "error" and "nope" in reply["error"]
        client.close()

    def test_submit_rejects_malformed_request(self, service):
        _, address, _ = service
        client = FakeClient(address)
        assert client.rpc({"type": "submit", "request": "fig5"})["type"] == "error"
        assert client.rpc({"type": "submit"})["type"] == "error"
        client.close()

    def test_poll_and_cancel_unknown_job(self, service):
        _, address, _ = service
        client = FakeClient(address)
        assert client.rpc({"type": "poll", "job": "job-9999"})["type"] == "error"
        assert client.rpc({"type": "cancel", "job": "job-9999"})["type"] == "error"
        client.close()

    def test_unknown_message_kind_is_an_error_reply(self, service):
        _, address, _ = service
        client = FakeClient(address)
        assert client.rpc({"type": "frobnicate"})["type"] == "error"
        client.close()

    def test_cancel_pending_job_with_no_workers(self, service):
        _, address, _ = service
        client = FakeClient(address)
        job_id = client.submit(FIG5)["job"]
        client.poll_until(job_id, ("running",))
        reply = client.rpc({"type": "cancel", "job": job_id})
        assert reply["state"] == "cancelled"
        # Terminal states are sticky: a second cancel is a no-op reply.
        assert client.rpc({"type": "cancel", "job": job_id})["state"] == "cancelled"
        client.close()

    def test_jobs_listing_reflects_submissions(self, service):
        _, address, _ = service
        client = FakeClient(address)
        job_id = client.submit(FIG5, tenant="alice")["job"]
        client.poll_until(job_id, ("running",))
        reply = client.rpc({"type": "jobs"})
        assert reply["type"] == "jobs"
        assert reply["jobs"][job_id]["tenant"] == "alice"
        assert reply["jobs"][job_id]["experiments"] == ["fig5"]
        client.close()

    def test_status_payload_carries_jobs_and_scheduler(self, service):
        svc, address, _ = service
        client = FakeClient(address)
        job_id = client.submit(FIG5)["job"]
        client.poll_until(job_id, ("running",))
        payload = svc.status_payload()
        from repro.telemetry.status import validate_status

        assert validate_status(payload) == []
        assert job_id in payload["jobs"]
        assert payload["scheduler"]["service_quantum"] == 4
        client.close()

    def test_sweep_client_refuses_plain_coordinator(self):
        unit = make_unit()
        coordinator = Coordinator([unit], InMemoryResultStore())
        host, port = coordinator.start()
        try:
            with pytest.raises(ServiceError, match="job submissions"):
                SweepClient(f"{host}:{port}")
        finally:
            coordinator.stop()


# ----------------------------------------------------------------- fairness (service level)


class TestServiceFairness:
    def test_interactive_points_preempt_a_running_batch(self):
        """With a batch sweep in flight, a newly submitted interactive
        job's points are granted next — before any further batch point —
        i.e. the interactive job drains well within one clearing interval."""
        store = InMemoryResultStore()
        # Long lease/straggler windows: the hand-driven worker never
        # heartbeats, and expiry-requeue noise would blur the grant order
        # this test asserts on.
        svc = SweepService(
            store,
            service_quantum=2,
            clearing_interval=60.0,
            lease_timeout=30.0,
            straggler_timeout=60.0,
            retry_seconds=0.05,
        )
        address = svc.start()
        try:
            tenant = FakeClient(address, "batch-tenant")
            batch_id = tenant.submit(
                SweepRequest(experiments=("fig6",), instructions=1500, priority="batch")
            )["job"]
            tenant.poll_until(batch_id, ("running",))

            worker = FakeClient(address, "hand-worker", role="worker")
            for _ in range(3):  # the batch fleet is already being served
                grant = worker.lease_work()
                assert grant["job"] == batch_id

            ui = FakeClient(address, "ui-tenant")
            ui_id = ui.submit(FIG5)["job"]  # 6 disjoint points, interactive
            ui.poll_until(ui_id, ("running",))

            grants = [worker.lease_work()["job"] for _ in range(6)]
            assert grants == [ui_id] * 6
            # Interactive backlog drained; the batch job resumes.
            assert worker.lease_work()["job"] == batch_id
            for client in (tenant, ui, worker):
                client.close()
        finally:
            svc.stop()


# ----------------------------------------------------------------- equivalence


def start_worker_thread(address, name):
    host, port = address

    def serve():
        try:
            run_worker(f"{host}:{port}", worker_id=name, log=lambda text: None)
        except OSError:
            pass  # service shut down mid-request

    thread = threading.Thread(target=serve, daemon=True, name=name)
    thread.start()
    return thread


def dumps(results) -> str:
    return json.dumps(canonical_data(dict(results)), indent=2, sort_keys=True)


class TestTwoClientEquivalence:
    def test_concurrent_overlapping_jobs_match_serial_byte_for_byte(self):
        serial_both = sweep_experiments(BOTH, store=InMemoryResultStore())
        serial_fig6 = sweep_experiments(FIG6, store=InMemoryResultStore())
        distinct_points = serial_both.stats.planned  # fig5 ∪ fig6

        store = InMemoryResultStore()
        svc = SweepService(store, **FAST)
        address = svc.start()
        workers = []
        try:
            workers = [start_worker_thread(address, f"inproc-{i}") for i in range(2)]
            with SweepClient(address, tenant="alice") as alice, \
                    SweepClient(address, tenant="bob") as bob:
                job1 = alice.submit(BOTH)
                job2 = bob.submit(FIG6)
                status1 = alice.wait(job1, timeout=120)
                status2 = bob.wait(job2, timeout=120)
                assert status1.state == "done" and status2.state == "done"

                # Byte-identical exports: the service's replay is the
                # serial code path reading the same store.
                assert dumps(alice.results(job1)) == dumps(serial_both.data)
                assert dumps(bob.results(job2)) == dumps(serial_fig6.data)

                # Every distinct point was simulated exactly once across
                # the two jobs; the fig6 overlap was shared, not re-run.
                assert status1.executed + status2.executed == distinct_points
                assert status1.executed + status1.reused == status1.points
                assert status2.executed + status2.reused == status2.points
                assert status2.points == serial_fig6.stats.planned
        finally:
            svc.stop()
            for thread in workers:
                thread.join(timeout=5)

    def test_tenants_on_different_engines_are_isolated(self):
        """Tenant A on `compiled`, tenant B on `event`, one shared fleet.

        The engine override travels inside each request and is applied
        thread-scoped end to end (planning bakes it into the unit
        configs, the workers honour it per point), so concurrent tenants
        on different engines cannot cross-contaminate — and because the
        compiled engine is bit-identical, both exports byte-match the
        plain serial runs.
        """
        from repro.sim.codegen import cache as codegen_cache

        serial_fig5 = sweep_experiments(FIG5, store=InMemoryResultStore())
        serial_fig6 = sweep_experiments(FIG6, store=InMemoryResultStore())
        compiled_fig5 = SweepRequest(
            experiments=("fig5",), instructions=1500, engine="compiled"
        )
        event_fig6 = SweepRequest(experiments=("fig6",), instructions=1500, engine="event")

        def resolutions() -> int:
            counters = codegen_cache._counters
            return counters["emits"] + counters["disk_hits"] + counters["memory_hits"]

        resolutions_before = resolutions()
        store = InMemoryResultStore()
        svc = SweepService(store, **FAST)
        address = svc.start()
        workers = []
        try:
            workers = [start_worker_thread(address, f"inproc-eng-{i}") for i in range(2)]
            with SweepClient(address, tenant="alice") as alice, \
                    SweepClient(address, tenant="bob") as bob:
                job1 = alice.submit(compiled_fig5)
                job2 = bob.submit(event_fig6)
                status1 = alice.wait(job1, timeout=120)
                status2 = bob.wait(job2, timeout=120)
                assert status1.state == "done" and status2.state == "done"
                assert dumps(alice.results(job1)) == dumps(serial_fig5.data)
                assert dumps(bob.results(job2)) == dumps(serial_fig6.data)
        finally:
            svc.stop()
            for thread in workers:
                thread.join(timeout=5)
        # The compiled tenant really exercised the codegen seam (the
        # in-process workers resolve modules through the shared cache).
        assert resolutions() > resolutions_before

    def test_second_submit_after_completion_is_all_reuse(self):
        store = InMemoryResultStore()
        svc = SweepService(store, **FAST)
        address = svc.start()
        workers = []
        try:
            workers = [start_worker_thread(address, "inproc-reuse")]
            with SweepClient(address) as client:
                first = client.run(FIG5, timeout=120)
                status = client.poll(client.submit(FIG5))
                # Every point is already in the shared store: the job
                # finalises without touching the fleet.
                deadline = time.monotonic() + 30
                while not status.finished and time.monotonic() < deadline:
                    time.sleep(0.05)
                    status = client.poll(status.job_id)
                assert status.state == "done"
                assert status.executed == 0
                assert status.reused == status.points
                assert dumps(client.results(status.job_id)) == dumps(first)
        finally:
            svc.stop()
            for thread in workers:
                thread.join(timeout=5)
