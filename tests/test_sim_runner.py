"""Tests for the experiment runner (alone-run cache, workload evaluation)."""

import pytest

from repro.sim.config import baseline_config, drstrange_config
from repro.sim.runner import AloneRunCache, compare_designs, run_single_application, run_workload
from repro.workloads.mixes import build_traces
from repro.workloads.spec import ApplicationSpec, RNGBenchmarkSpec, WorkloadMix


@pytest.fixture(scope="module")
def mix():
    app = ApplicationSpec("runner-app", mpki=8.0, row_locality=0.5)
    rng = RNGBenchmarkSpec("runner-rng", throughput_mbps=5120.0)
    return WorkloadMix(name="runner-mix", slots=[app, rng])


@pytest.fixture(scope="module")
def cache():
    return AloneRunCache()


INSTRUCTIONS = 10_000


class TestAloneRunCache:
    def test_cache_hits_on_repeated_lookup(self, mix, cache):
        traces = build_traces(mix, INSTRUCTIONS, seed=0)
        config = baseline_config()
        first, _ = cache.get(traces[0], config)
        misses = cache.misses
        second, _ = cache.get(traces[0], config)
        assert cache.misses == misses
        assert cache.hits >= 1
        assert first is second

    def test_different_trace_misses(self, mix, cache):
        traces = build_traces(mix, INSTRUCTIONS, seed=0)
        config = baseline_config()
        cache.get(traces[0], config)
        misses = cache.misses
        cache.get(traces[1], config)
        assert cache.misses == misses + 1

    def test_clear(self):
        cache = AloneRunCache()
        assert len(cache) == 0
        cache.clear()
        assert cache.hits == 0


class TestRunWorkload:
    def test_evaluation_structure(self, mix, cache):
        evaluation = run_workload(mix, baseline_config(), instructions=INSTRUCTIONS, cache=cache)
        assert len(evaluation.slots) == 2
        assert evaluation.non_rng_slots[0].name == "runner-app"
        assert evaluation.rng_slots[0].name == "runner-rng"
        assert evaluation.unfairness >= 1.0
        assert evaluation.non_rng_slowdown > 0
        assert evaluation.rng_slowdown > 0

    def test_sharing_causes_slowdown_on_baseline(self, mix, cache):
        evaluation = run_workload(mix, baseline_config(), instructions=INSTRUCTIONS, cache=cache)
        assert evaluation.non_rng_slowdown > 1.0

    def test_weighted_speedup_bounds(self, mix, cache):
        evaluation = run_workload(mix, baseline_config(), instructions=INSTRUCTIONS, cache=cache)
        assert 0.0 < evaluation.non_rng_normalized_weighted_speedup <= 1.5

    def test_compare_designs_uses_same_traces(self, mix, cache):
        results = compare_designs(
            mix,
            {"base": baseline_config(), "drs": drstrange_config()},
            instructions=INSTRUCTIONS,
            cache=cache,
        )
        assert set(results) == {"base", "drs"}
        assert results["base"].result.rng_requests > 0

    def test_run_single_application(self, mix, cache):
        traces = build_traces(mix, INSTRUCTIONS, seed=0)
        core, result = run_single_application(traces[0], baseline_config(), cache=cache)
        assert core.instructions >= INSTRUCTIONS
        assert result.total_cycles >= core.cycles
