"""Tests for the experiment runner (alone-run cache, workload evaluation)."""

import pytest

from repro.sim.config import baseline_config, drstrange_config
from repro.sim.runner import AloneRunCache, compare_designs, run_single_application, run_workload
from repro.workloads.mixes import build_traces
from repro.workloads.spec import ApplicationSpec, RNGBenchmarkSpec, WorkloadMix


@pytest.fixture(scope="module")
def mix():
    app = ApplicationSpec("runner-app", mpki=8.0, row_locality=0.5)
    rng = RNGBenchmarkSpec("runner-rng", throughput_mbps=5120.0)
    return WorkloadMix(name="runner-mix", slots=[app, rng])


@pytest.fixture(scope="module")
def cache():
    return AloneRunCache()


INSTRUCTIONS = 10_000


class TestAloneRunCache:
    def test_cache_hits_on_repeated_lookup(self, mix, cache):
        traces = build_traces(mix, INSTRUCTIONS, seed=0)
        config = baseline_config()
        first, _ = cache.get(traces[0], config)
        misses = cache.misses
        second, _ = cache.get(traces[0], config)
        assert cache.misses == misses
        assert cache.hits >= 1
        assert first is second

    def test_different_trace_misses(self, mix, cache):
        traces = build_traces(mix, INSTRUCTIONS, seed=0)
        config = baseline_config()
        cache.get(traces[0], config)
        misses = cache.misses
        cache.get(traces[1], config)
        assert cache.misses == misses + 1

    def test_clear(self):
        cache = AloneRunCache()
        assert len(cache) == 0
        cache.clear()
        assert cache.hits == 0


class TestRunWorkload:
    def test_evaluation_structure(self, mix, cache):
        evaluation = run_workload(mix, baseline_config(), instructions=INSTRUCTIONS, cache=cache)
        assert len(evaluation.slots) == 2
        assert evaluation.non_rng_slots[0].name == "runner-app"
        assert evaluation.rng_slots[0].name == "runner-rng"
        assert evaluation.unfairness >= 1.0
        assert evaluation.non_rng_slowdown > 0
        assert evaluation.rng_slowdown > 0

    def test_sharing_causes_slowdown_on_baseline(self, mix, cache):
        evaluation = run_workload(mix, baseline_config(), instructions=INSTRUCTIONS, cache=cache)
        assert evaluation.non_rng_slowdown > 1.0

    def test_weighted_speedup_bounds(self, mix, cache):
        evaluation = run_workload(mix, baseline_config(), instructions=INSTRUCTIONS, cache=cache)
        assert 0.0 < evaluation.non_rng_normalized_weighted_speedup <= 1.5

    def test_compare_designs_uses_same_traces(self, mix, cache):
        results = compare_designs(
            mix,
            {"base": baseline_config(), "drs": drstrange_config()},
            instructions=INSTRUCTIONS,
            cache=cache,
        )
        assert set(results) == {"base", "drs"}
        assert results["base"].result.rng_requests > 0

    def test_run_single_application(self, mix, cache):
        traces = build_traces(mix, INSTRUCTIONS, seed=0)
        core, result = run_single_application(traces[0], baseline_config(), cache=cache)
        assert core.instructions >= INSTRUCTIONS
        assert result.total_cycles >= core.cycles


class TestScopedOverrides:
    """The engine/backend overrides are thread-scoped; the scoped
    installers must restore the previous value even when the body raises
    (an unscoped install used to leak a failing sweep's override into
    every subsequent in-process simulation), and an override in one
    thread must never leak into another (concurrent service tenants and
    in-process workers share the module)."""

    def test_engine_override_restores_on_exception(self):
        from repro.sim import runner

        assert runner._SCOPE.engine is None
        with pytest.raises(RuntimeError, match="boom"):
            with runner.engine_override("tick"):
                assert runner._SCOPE.engine == "tick"
                raise RuntimeError("boom")
        assert runner._SCOPE.engine is None

    def test_engine_override_restores_outer_override(self):
        from repro.sim import runner

        with runner.engine_override("tick"):
            with runner.engine_override("event"):
                assert runner._SCOPE.engine == "event"
            assert runner._SCOPE.engine == "tick"
        assert runner._SCOPE.engine is None

    def test_simulation_backend_restores_on_exception(self):
        from repro.sim import runner

        def backend(traces, config):  # pragma: no cover - never invoked
            raise AssertionError("unused")

        assert runner._SCOPE.backend is None
        with pytest.raises(RuntimeError, match="boom"):
            with runner.simulation_backend(backend):
                assert runner._SCOPE.backend is backend
                raise RuntimeError("boom")
        assert runner._SCOPE.backend is None

    def test_overrides_are_thread_local(self):
        import threading

        from repro.sim import runner

        installed = threading.Event()
        release = threading.Event()
        seen = {}

        def other_thread():
            seen["engine"] = runner._SCOPE.engine
            seen["backend"] = runner._SCOPE.backend
            with runner.engine_override("event"):
                installed.set()
                release.wait(timeout=5)

        def backend(traces, config):  # pragma: no cover - never invoked
            raise AssertionError("unused")

        with runner.engine_override("tick"), runner.simulation_backend(backend):
            worker = threading.Thread(target=other_thread)
            worker.start()
            assert installed.wait(timeout=5)
            # The other thread saw pristine defaults, not this thread's
            # overrides — and its own override is invisible here.
            assert seen == {"engine": None, "backend": None}
            assert runner._SCOPE.engine == "tick"
            release.set()
            worker.join(timeout=5)
        assert runner._SCOPE.engine is None

    def test_failing_backend_mid_run_restores_previous_backend(self):
        """End to end: a backend that raises while serving a simulation
        must not stay installed at the choke point."""
        from repro.cpu.trace import Trace, TraceEntry
        from repro.sim import runner

        calls = []

        def exploding_backend(traces, config):
            calls.append(1)
            raise RuntimeError("backend failure mid-sweep")

        exploding_backend.provides_real_results = False

        trace = Trace([TraceEntry(bubbles=10)], name="scoped-backend")
        with pytest.raises(RuntimeError, match="mid-sweep"):
            with runner.simulation_backend(exploding_backend):
                runner.simulate_traces([trace], baseline_config())
        assert calls, "the failing backend was never exercised"
        assert runner._SCOPE.backend is None
        # Direct execution works again after the failed run.
        result = runner.simulate_traces([trace], baseline_config())
        assert result.total_cycles > 0
