"""Tests for the simulation configuration."""

import pytest

from repro.core.config import DRStrangeConfig
from repro.sim.config import (
    DESIGN_DRSTRANGE,
    DESIGN_GREEDY_IDLE,
    DESIGN_RNG_OBLIVIOUS,
    SimulationConfig,
    baseline_config,
    drstrange_config,
    greedy_config,
)
from repro.trng import DRaNGe, ParametricTRNG, QUACTRNG


class TestConstruction:
    def test_default_is_drstrange_table1(self):
        config = SimulationConfig()
        assert config.design == DESIGN_DRSTRANGE
        assert config.scheduler == "fr-fcfs+cap"
        assert config.drstrange.buffer_entries == 16
        assert config.organization.channels == 4

    def test_factories(self):
        assert baseline_config().design == DESIGN_RNG_OBLIVIOUS
        assert greedy_config().design == DESIGN_GREEDY_IDLE
        assert drstrange_config().design == DESIGN_DRSTRANGE

    def test_invalid_design_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(design="not-a-design")

    def test_invalid_priority_mode_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(priority_mode="whatever")

    def test_drstrange_config_validation(self):
        with pytest.raises(ValueError):
            DRStrangeConfig(predictor="magic")
        with pytest.raises(ValueError):
            DRStrangeConfig(buffer_entries=-1)
        with pytest.raises(ValueError):
            DRStrangeConfig(rl_learning_rate=2.0)


class TestDerived:
    def test_make_trng_by_name(self):
        assert isinstance(baseline_config().make_trng(), DRaNGe)
        assert isinstance(baseline_config(trng_name="quac-trng").make_trng(), QUACTRNG)
        parametric = baseline_config(trng_name="parametric", trng_throughput_mbps=800.0).make_trng()
        assert isinstance(parametric, ParametricTRNG)

    def test_parametric_requires_throughput(self):
        with pytest.raises(ValueError):
            baseline_config(trng_name="parametric").make_trng()

    def test_uses_flags(self):
        assert not baseline_config().uses_rng_aware_scheduler
        assert not baseline_config().uses_buffer
        assert greedy_config().uses_buffer
        assert drstrange_config().uses_rng_aware_scheduler
        no_buffer = drstrange_config(drstrange=DRStrangeConfig(buffer_entries=0))
        assert not no_buffer.uses_buffer
        assert no_buffer.uses_rng_aware_scheduler

    def test_alone_run_config_is_baseline(self):
        alone = drstrange_config().alone_run_config()
        assert alone.design == DESIGN_RNG_OBLIVIOUS
        assert alone.scheduler == "fr-fcfs+cap"
        assert alone.trng_name == "d-range"

    def test_cache_key_distinguishes_trng(self):
        a = drstrange_config().cache_key()
        b = drstrange_config(trng_name="quac-trng").cache_key()
        assert a != b

    def test_cache_key_ignores_design(self):
        a = drstrange_config().alone_run_config().cache_key()
        b = greedy_config().alone_run_config().cache_key()
        assert a == b

    def test_buffer_capacity_bits(self):
        assert DRStrangeConfig(buffer_entries=16, bits_per_entry=64).buffer_capacity_bits == 1024
