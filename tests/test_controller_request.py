"""Tests for memory request records."""

import pytest

from repro.controller.request import Request, RequestType, make_read, make_rng, make_write


class TestRequestConstruction:
    def test_make_read(self):
        request = make_read(0x1000, core_id=2, cycle=5)
        assert request.type is RequestType.READ
        assert request.is_read and not request.is_write and not request.is_rng
        assert request.core_id == 2
        assert request.arrival_cycle == 5

    def test_make_write(self):
        request = make_write(0x2000, core_id=1, cycle=7)
        assert request.is_write

    def test_make_rng(self):
        request = make_rng(16, core_id=0, cycle=3)
        assert request.is_rng
        assert request.rng_bits == 16

    def test_rng_requires_positive_bits(self):
        with pytest.raises(ValueError):
            Request(type=RequestType.RNG, core_id=0, rng_bits=0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Request(type=RequestType.READ, core_id=0, address=-4)

    def test_request_ids_unique(self):
        a, b = make_read(0, 0, 0), make_read(0, 0, 0)
        assert a.request_id != b.request_id


class TestRequestLifecycle:
    def test_latency_unknown_before_completion(self):
        request = make_read(0, 0, cycle=10)
        assert request.latency is None

    def test_complete_sets_latency_and_calls_callback(self):
        observed = []
        request = make_read(0, 0, cycle=10, callback=observed.append)
        request.complete(35)
        assert request.completion_cycle == 35
        assert request.latency == 25
        assert observed == [request]

    def test_complete_without_callback(self):
        request = make_write(0, 0, cycle=0)
        request.complete(10)
        assert request.latency == 10
