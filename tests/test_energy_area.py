"""Tests for the energy and area models."""

import pytest

from repro.core.config import DRStrangeConfig
from repro.dram.bank import BankStats
from repro.dram.channel import ChannelStats
from repro.energy.area import AreaModel, CASCADE_LAKE_CORE_AREA_MM2
from repro.energy.drampower import DRAMEnergyModel, EnergyParameters


class TestEnergyModel:
    def _stats(self, activations=100, reads=200, writes=50, rng_cycles=1000):
        bank = BankStats(activations=activations)
        channel = ChannelStats(read_accesses=reads, write_accesses=writes, rng_cycles=rng_cycles)
        return bank, channel

    def test_energy_components_positive(self):
        model = DRAMEnergyModel()
        bank, channel = self._stats()
        energy = model.energy(bank, channel, total_cycles=10_000)
        assert energy.activation_nj > 0
        assert energy.read_nj > 0
        assert energy.write_nj > 0
        assert energy.rng_nj > 0
        assert energy.background_nj > 0
        assert energy.total_nj == pytest.approx(energy.dynamic_nj + energy.background_nj)

    def test_longer_runtime_costs_more_background_energy(self):
        model = DRAMEnergyModel()
        bank, channel = self._stats()
        short = model.energy(bank, channel, total_cycles=10_000)
        long = model.energy(bank, channel, total_cycles=20_000)
        assert long.total_nj > short.total_nj
        assert long.dynamic_nj == pytest.approx(short.dynamic_nj)

    def test_more_rng_cycles_cost_more(self):
        model = DRAMEnergyModel()
        bank, low = self._stats(rng_cycles=100)
        _, high = self._stats(rng_cycles=10_000)
        assert model.energy(bank, high, 10_000).rng_nj > model.energy(bank, low, 10_000).rng_nj

    def test_total_mj_conversion(self):
        model = DRAMEnergyModel()
        bank, channel = self._stats()
        energy = model.energy(bank, channel, 1000)
        assert energy.total_mj == pytest.approx(energy.total_nj * 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParameters(read_nj=-1)
        with pytest.raises(ValueError):
            DRAMEnergyModel(num_channels=0)
        model = DRAMEnergyModel()
        bank, channel = self._stats()
        with pytest.raises(ValueError):
            model.energy(bank, channel, total_cycles=-1)


class TestAreaModel:
    def test_default_config_matches_paper_area(self):
        area = AreaModel().total_area_mm2(DRStrangeConfig())
        assert 0.0015 <= area <= 0.0030  # paper: 0.0022 mm^2

    def test_fraction_of_core_matches_paper(self):
        breakdown = AreaModel().breakdown(DRStrangeConfig())
        fraction = breakdown.fraction_of_core()
        assert 0.0000030 <= fraction <= 0.0000070  # paper: 0.00048%

    def test_rl_predictor_costs_more(self):
        model = AreaModel()
        simple = model.total_area_mm2(DRStrangeConfig(predictor="simple"))
        rl = model.total_area_mm2(DRStrangeConfig(predictor="rl"))
        assert rl > simple

    def test_no_predictor_is_smallest(self):
        model = AreaModel()
        none = model.total_area_mm2(DRStrangeConfig(predictor="none"))
        simple = model.total_area_mm2(DRStrangeConfig(predictor="simple"))
        assert none < simple

    def test_bigger_buffer_costs_more(self):
        model = AreaModel()
        small = model.total_area_mm2(DRStrangeConfig(buffer_entries=1))
        big = model.total_area_mm2(DRStrangeConfig(buffer_entries=64))
        assert big > small

    def test_breakdown_sums(self):
        breakdown = AreaModel().breakdown(DRStrangeConfig())
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.random_number_buffer_mm2
            + breakdown.rng_request_queue_mm2
            + breakdown.predictor_mm2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaModel(mm2_per_bit=0)
        with pytest.raises(ValueError):
            AreaModel().breakdown(DRStrangeConfig()).fraction_of_core(core_area_mm2=0)

    def test_core_area_reference(self):
        assert CASCADE_LAKE_CORE_AREA_MM2 > 0
