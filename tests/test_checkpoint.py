"""Tests for deterministic checkpoint/restore (:mod:`repro.sim.checkpoint`).

The fuzz harness (:mod:`tests.test_engine_fuzz`) proves the broad
property — checkpoint at a random cycle, restore, finish, bit-identical
on both engines across hundreds of random systems.  This module pins
the format contract and the corners:

* snapshot → restore → snapshot carries the same content digest (the
  bytes are a pure function of kernel structure);
* version and schema mismatches are rejected, corrupt/truncated files
  are deleted-and-resimulated (mirroring ``ResultCache.get``);
* the event engine resumes bit-identically from pauses landing inside a
  batched serve window and inside a deferred stall/quiet skip;
* a checkpoint taken under one engine finishes under the other;
* the runner's checkpoint policy resumes an interrupted run from the
  store, and warmup prefixes are shared across ``engine``/``max_cycles``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DRStrangeConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.address import AddressMapping
from repro.sim import checkpoint
from repro.sim.config import ENGINE_EVENT, ENGINE_TICK, SimulationConfig
from repro.sim.runner import CheckpointPolicy, checkpointing, simulate_traces
from repro.sim.system import System
from repro.workloads.rng_benchmark import generate_rng_trace
from repro.workloads.spec import ApplicationSpec, RNGBenchmarkSpec
from repro.workloads.synthetic import generate_application_trace

ENGINES = (ENGINE_TICK, ENGINE_EVENT)


def make_config(engine: str = ENGINE_EVENT, **overrides) -> SimulationConfig:
    defaults = dict(
        design="dr-strange",
        drstrange=DRStrangeConfig(predictor="simple", buffer_entries=16),
        max_cycles=50_000,
    )
    defaults.update(overrides)
    return SimulationConfig(engine=engine, **defaults)


def make_traces(config: SimulationConfig, instructions: int = 800, seed: int = 3):
    mapping = AddressMapping(config.organization)
    rng_spec = RNGBenchmarkSpec("ckpt-rng", throughput_mbps=2560.0)
    app_spec = ApplicationSpec("ckpt-app", mpki=8.0, row_locality=0.5, write_fraction=0.25)
    return [
        generate_rng_trace(rng_spec, instructions, seed=seed, mapping=mapping),
        generate_application_trace(
            app_spec, instructions, seed=seed + 1, mapping=mapping, row_offset=4096
        ),
    ]


def paused_system(config: SimulationConfig, stop_at: int, traces=None) -> System:
    system = System(traces if traces is not None else make_traces(config), config)
    system.advance(stop_at=stop_at)
    return system


def finish(system: System) -> dict:
    while not system.advance():
        pass
    return dataclasses.asdict(system.finalize())


# ----------------------------------------------------------------- format


class TestFormat:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_digest_survives_restore(self, engine):
        """snapshot(restore(snapshot(sys))) carries the same content digest."""
        config = make_config(engine)
        data = checkpoint.snapshot(paused_system(config, stop_at=2_000))
        restored = checkpoint.restore(data)
        assert checkpoint.content_digest(checkpoint.snapshot(restored)) == (
            checkpoint.content_digest(data)
        )

    def test_describe_reports_metadata_without_kernel(self):
        config = make_config()
        system = paused_system(config, stop_at=1_500)
        meta = checkpoint.describe(checkpoint.snapshot(system))
        assert meta["format"] == checkpoint.CHECKPOINT_VERSION
        assert meta["cycle"] == system.cycle
        assert meta["engine"] == config.engine
        assert meta["design"] == config.design
        assert meta["traces"] == [trace.name for trace in system.traces]
        assert meta["kernel_bytes"] > 0
        assert "kernel" not in meta

    def test_version_mismatch_rejected(self):
        data = bytearray(checkpoint.snapshot(paused_system(make_config(), 1_000)))
        data[len(checkpoint._MAGIC)] = checkpoint.CHECKPOINT_VERSION + 1
        with pytest.raises(checkpoint.CheckpointVersionError):
            checkpoint.restore(bytes(data))

    def test_bad_magic_and_truncation_are_corrupt(self):
        data = checkpoint.snapshot(paused_system(make_config(), 1_000))
        with pytest.raises(checkpoint.CheckpointCorruptError):
            checkpoint.restore(b"NOT-A-CKPT" + data[10:])
        with pytest.raises(checkpoint.CheckpointCorruptError):
            checkpoint.restore(data[:20])

    def test_flipped_payload_byte_fails_integrity(self):
        data = bytearray(checkpoint.snapshot(paused_system(make_config(), 1_000)))
        data[-1] ^= 0xFF
        with pytest.raises(checkpoint.CheckpointCorruptError):
            checkpoint.restore(bytes(data))

    def test_trace_mismatch_rejected(self):
        config = make_config()
        data = checkpoint.snapshot(paused_system(config, 1_000))
        other = [Trace([TraceEntry(bubbles=5, address=64)], name="other")]
        with pytest.raises(checkpoint.CheckpointMismatchError):
            checkpoint.restore(data, traces=other)

    def test_foreign_config_rejected(self):
        config = make_config()
        traces = make_traces(config)
        data = checkpoint.snapshot(paused_system(config, 1_000, traces=traces))
        foreign = dataclasses.replace(config, design="rng-oblivious")
        with pytest.raises(checkpoint.CheckpointMismatchError):
            checkpoint.restore(data, traces=traces, config=foreign)

    def test_prefix_key_ignores_engine_and_max_cycles_only(self):
        config = make_config(ENGINE_EVENT, max_cycles=50_000)
        traces = make_traces(config)
        key = checkpoint.prefix_key(traces, config)
        assert key == checkpoint.prefix_key(
            traces, dataclasses.replace(config, engine=ENGINE_TICK, max_cycles=9_999)
        )
        assert key != checkpoint.prefix_key(
            traces, dataclasses.replace(config, design="rng-oblivious")
        )


# ----------------------------------------------------------------- files


class TestFiles:
    def test_load_mirrors_result_cache_get_semantics(self, tmp_path):
        """Corrupt files: deleted and resimulated.  Version skew: a
        non-destructive miss (the file may belong to another build)."""
        config = make_config()
        system = paused_system(config, 1_000)
        path = tmp_path / "a.ckpt"
        data = checkpoint.save(path, system)

        # Happy path round-trips.
        assert checkpoint.load(path).cycle == system.cycle

        # Truncated file: deleted, miss.
        path.write_bytes(data[: len(data) // 2])
        assert checkpoint.load(path) is None
        assert not path.exists()

        # Garbage: deleted, miss.
        path.write_bytes(b"garbage")
        assert checkpoint.load(path) is None
        assert not path.exists()

        # Version skew: miss, file left in place.
        stale = bytearray(data)
        stale[len(checkpoint._MAGIC)] = checkpoint.CHECKPOINT_VERSION + 1
        path.write_bytes(bytes(stale))
        assert checkpoint.load(path) is None
        assert path.exists()

        # Missing file: miss.
        assert checkpoint.load(tmp_path / "missing.ckpt") is None

    def test_store_resumes_and_prunes(self, checkpoint_store):
        config = make_config()
        traces = make_traces(config)
        early = paused_system(config, 500, traces=traces)
        late = paused_system(config, 1_500, traces=traces)
        early_path = checkpoint_store.put(traces, config, early)
        late_path = checkpoint_store.put(traces, config, late)
        # Only the latest cycle per prefix survives.
        assert not early_path.exists()
        assert late_path.exists()
        resumed = checkpoint_store.resume(traces, config)
        assert resumed is not None and resumed.cycle == late.cycle
        assert checkpoint_store.hits == 1

    def test_store_corruption_resimulates(self, checkpoint_store):
        config = make_config()
        traces = make_traces(config)
        path = checkpoint_store.put(traces, config, paused_system(config, 2_000, traces=traces))
        path.write_bytes(b"REPRO-CKPT garbage")
        assert checkpoint_store.resume(traces, config) is None
        assert not path.exists()  # deleted: the next run resimulates cleanly

    def test_store_skips_checkpoints_past_the_cycle_limit(self, checkpoint_store):
        config = make_config()
        traces = make_traces(config)
        checkpoint_store.put(traces, config, paused_system(config, 1_500, traces=traces))
        capped = dataclasses.replace(config, max_cycles=1_000)
        assert checkpoint_store.resume(traces, capped) is None


# ----------------------------------------------------------------- resume identity


class TestResumeIdentity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_resume_finishes_bit_identical(self, engine):
        config = make_config(engine)
        traces = make_traces(config)
        straight = dataclasses.asdict(System(list(traces), config).run())
        stop_at = straight["total_cycles"] // 2
        data = checkpoint.snapshot(paused_system(config, stop_at, traces=list(traces)))
        assert finish(checkpoint.restore(data)) == straight

    @pytest.mark.parametrize("direction", [(ENGINE_EVENT, ENGINE_TICK), (ENGINE_TICK, ENGINE_EVENT)])
    def test_cross_engine_resume(self, direction):
        """A snapshot taken under one engine finishes under the other."""
        src, dst = direction
        config_src = make_config(src)
        config_dst = dataclasses.replace(config_src, engine=dst)
        traces = make_traces(config_src)
        straight = dataclasses.asdict(System(list(traces), config_dst).run())
        stop_at = straight["total_cycles"] // 2
        data = checkpoint.snapshot(paused_system(config_src, stop_at, traces=list(traces)))
        resumed = checkpoint.restore(data, traces=list(traces), config=config_dst)
        assert resumed.config.engine == dst
        assert finish(resumed) == straight

    def test_event_engine_mid_serve_window_pauses(self):
        """Pauses landing inside the event engine's batched serve windows
        (buffer-fed RNG demand) resume bit-identically.  A dense stride
        of pause points across the buffer-serving phase of the run
        guarantees several land mid-window."""
        config = make_config(ENGINE_EVENT)
        traces = make_traces(config, instructions=400)
        straight = dataclasses.asdict(System(list(traces), config).run())
        total = straight["total_cycles"]
        for stop_at in range(97, total, max(1, total // 12)):
            data = checkpoint.snapshot(paused_system(config, stop_at, traces=list(traces)))
            assert finish(checkpoint.restore(data)) == straight, f"pause at {stop_at}"

    def test_event_engine_mid_deferred_skip_pauses(self):
        """Pauses landing inside a deferred stall/quiet skip (single core,
        kilocycle bubble stretches the event engine jumps over) must
        materialise the deferred segments exactly at the pause cycle."""
        entries = []
        for index in range(40):
            entries.append(TraceEntry(bubbles=1_000, address=(index % 7) * 8192))
        trace = Trace(entries, name="bubbly", metadata={"seed": 0})
        config = SimulationConfig(engine=ENGINE_EVENT, design="rng-oblivious", max_cycles=200_000)
        straight = dataclasses.asdict(System([trace], config).run())
        total = straight["total_cycles"]
        # Stride prime-offset pause points: most land mid-skip.
        for stop_at in range(513, total, max(1, total // 10)):
            data = checkpoint.snapshot(paused_system(config, stop_at, traces=[trace]))
            assert finish(checkpoint.restore(data)) == straight, f"pause at {stop_at}"

    def test_pause_past_the_end_is_harmless(self):
        config = make_config()
        traces = make_traces(config)
        straight = dataclasses.asdict(System(list(traces), config).run())
        system = System(list(traces), config)
        assert system.advance(stop_at=10**9)  # finishes before the pause
        data = checkpoint.snapshot(system)
        assert finish(checkpoint.restore(data)) == straight


# ----------------------------------------------------------------- runner policy


class TestRunnerPolicy:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(store=object(), interval=0)

    def test_checkpointed_run_matches_straight_run(self, checkpoint_store):
        config = make_config()
        traces = make_traces(config)
        straight = dataclasses.asdict(simulate_traces(list(traces), config))
        with checkpointing(checkpoint_store, interval=400):
            checkpointed = dataclasses.asdict(simulate_traces(list(traces), config))
        assert checkpointed == straight
        assert checkpoint_store.stats()["entries"] > 0

    def test_second_run_resumes_from_latest_checkpoint(self, checkpoint_store):
        config = make_config()
        traces = make_traces(config)
        with checkpointing(checkpoint_store, interval=400):
            first = dataclasses.asdict(simulate_traces(list(traces), config))
            hits_before = checkpoint_store.hits
            second = dataclasses.asdict(simulate_traces(list(traces), config))
        assert second == first
        assert checkpoint_store.hits > hits_before  # resumed, not restarted

    def test_warmup_prefix_shared_across_engine_and_limit(self, checkpoint_store):
        """A checkpoint written under one sweep point warms another that
        differs only in engine and max_cycles — and stays bit-identical."""
        config_a = make_config(ENGINE_EVENT, max_cycles=50_000)
        traces = make_traces(config_a)
        config_b = dataclasses.replace(config_a, engine=ENGINE_TICK, max_cycles=49_999)
        straight_b = dataclasses.asdict(simulate_traces(list(traces), config_b))
        with checkpointing(checkpoint_store, interval=400):
            simulate_traces(list(traces), config_a)
            hits_before = checkpoint_store.hits
            resumed_b = dataclasses.asdict(simulate_traces(list(traces), config_b))
        assert resumed_b == straight_b
        assert checkpoint_store.hits > hits_before
