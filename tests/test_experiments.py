"""Smoke tests for every experiment module (tiny workloads, fast settings)."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig01_motivation,
    fig02_trng_throughput,
    fig05_idle_periods,
    fig06_dualcore_performance,
    fig07_multicore_speedup,
    fig08_multicore_rng,
    fig09_fairness,
    fig10_buffer_size,
    fig11_scheduler,
    fig12_priority,
    fig13_predictor,
    fig14_predictor_accuracy,
    fig15_low_utilization,
    fig16_quac,
    fig17_high_throughput,
    fig18_multicore_idle,
    sec88_low_intensity,
    sec89_energy_area,
)
from repro.workloads.spec import ApplicationSpec

#: One medium-intensity application keeps the smoke tests fast.
TINY_APPS = [ApplicationSpec("exp-test", mpki=8.0, row_locality=0.5)]
TINY_INSTRUCTIONS = 12_000


@pytest.fixture(scope="module")
def cache(session_cache):
    return session_cache


class TestRegistry:
    def test_registry_covers_all_evaluation_figures(self):
        expected = {
            "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "sec8.8", "sec8.9",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_module_has_run_and_format(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)
            assert callable(module.format_table)


class TestDualCoreExperiments:
    def test_fig01(self, cache):
        data = fig01_motivation.run(
            apps=TINY_APPS, throughputs_mbps=(640.0, 5120.0), instructions=TINY_INSTRUCTIONS, cache=cache
        )
        assert len(data["series"]) == 2
        assert fig01_motivation.format_table(data)

    def test_fig02(self, cache):
        data = fig02_trng_throughput.run(
            apps=TINY_APPS, trng_throughputs_mbps=(400.0, 3200.0), instructions=TINY_INSTRUCTIONS, cache=cache
        )
        assert len(data["series"]) == 2
        assert all("slowdown_box" in row for row in data["series"])
        assert fig02_trng_throughput.format_table(data)

    def test_fig05(self):
        data = fig05_idle_periods.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS)
        assert data["series"][0]["num_periods"] > 0
        assert fig05_idle_periods.format_table(data)

    def test_fig06_and_fig09(self, cache):
        data = fig06_dualcore_performance.run(
            apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache
        )
        assert set(data["averages"]) == {"rng-oblivious", "greedy", "dr-strange"}
        assert fig06_dualcore_performance.format_table(data)
        fairness = fig09_fairness.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert "average_unfairness" in fairness
        assert fig09_fairness.format_table(fairness)

    def test_fig10(self, cache):
        data = fig10_buffer_size.run(
            apps=TINY_APPS, buffer_sizes=(0, 16), instructions=TINY_INSTRUCTIONS, cache=cache
        )
        assert [row["buffer_entries"] for row in data["series"]] == [0, 16]
        assert data["series"][0]["avg_buffer_serve_rate"] == 0.0
        assert fig10_buffer_size.format_table(data)

    def test_fig11(self, cache):
        data = fig11_scheduler.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert set(data["averages"]) == {"fr-fcfs+cap", "bliss", "rng-aware"}
        assert fig11_scheduler.format_table(data)

    def test_fig13(self, cache):
        data = fig13_predictor.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert set(data["averages"]) == {
            "rng-oblivious", "no-predictor", "simple-predictor", "rl-predictor"
        }
        assert fig13_predictor.format_table(data)

    def test_fig14(self, cache):
        data = fig14_predictor_accuracy.run(
            apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, core_counts=(2,), cache=cache
        )
        assert data["two_core"]
        assert 0.0 <= data["two_core_average"]["simple"] <= 1.0
        assert fig14_predictor_accuracy.format_table(data)

    def test_fig15(self, cache):
        data = fig15_low_utilization.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert "threshold-0" in data["averages"] and "threshold-4" in data["averages"]
        assert fig15_low_utilization.format_table(data)

    def test_fig16(self, cache):
        data = fig16_quac.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert data["figure"] == "16"
        assert "QUAC" in fig16_quac.format_table(data)

    def test_fig17(self, cache):
        data = fig17_high_throughput.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert data["rng_throughput_mbps"] == pytest.approx(10_240.0)

    def test_sec88(self, cache):
        data = sec88_low_intensity.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert data["rng_throughput_mbps"] == pytest.approx(640.0)

    def test_sec89(self, cache):
        data = sec89_energy_area.run(apps=TINY_APPS, instructions=TINY_INSTRUCTIONS, cache=cache)
        assert "avg_energy_reduction" in data
        assert data["area"]["simple_predictor_mm2"] > 0
        assert sec89_energy_area.format_table(data)


class TestMultiCoreExperiments:
    def test_fig07_and_fig08(self, cache):
        data = fig07_multicore_speedup.run(
            instructions=TINY_INSTRUCTIONS,
            workloads_per_group=1,
            core_counts=(),
            include_four_core_groups=True,
            cache=cache,
        )
        assert len(data["four_core_groups"]) == 4
        assert fig07_multicore_speedup.format_table(data)
        rng_data = fig08_multicore_rng.run(
            instructions=TINY_INSTRUCTIONS,
            workloads_per_group=1,
            core_counts=(),
            include_four_core_groups=True,
            cache=cache,
        )
        assert len(rng_data["four_core_groups"]) == 4
        assert fig08_multicore_rng.format_table(rng_data)

    def test_fig12(self, cache):
        data = fig12_priority.run(
            core_counts=(4,), workloads_per_core_count=1, instructions=TINY_INSTRUCTIONS, cache=cache
        )
        assert data["series"][0]["cores"] == 4
        assert fig12_priority.format_table(data)

    def test_fig18(self):
        data = fig18_multicore_idle.run(core_counts=(4,), categories=("M",), instructions=8_000)
        assert data["series"][0]["num_periods"] > 0
        assert fig18_multicore_idle.format_table(data)
