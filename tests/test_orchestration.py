"""Tests for the orchestration subsystem: keys, cache, planning, parallel sweep."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cpu.trace import Trace, TraceEntry
from repro.experiments import fig06_dualcore_performance as fig6
from repro.orchestration import (
    InMemoryResultStore,
    PersistentAloneRunCache,
    ResultCache,
    filter_run_kwargs,
    plan_experiment,
    point_key,
    result_from_dict,
    result_to_dict,
    run_experiment,
)
from repro.sim import runner as sim_runner
from repro.sim.config import baseline_config
from repro.sim.runner import AloneRunCache
from repro.sim.system import System
from repro.workloads.suites import representative_subset


def make_trace(name: str = "t", rng: bool = False, seed: int = 0) -> Trace:
    entries = []
    for index in range(64):
        entries.append(
            TraceEntry(
                bubbles=3 + (index + seed) % 5,
                address=(index * 4096 + seed * 64) % (1 << 20),
                rng_bits=64 if rng and index % 16 == 0 else 0,
            )
        )
    return Trace(entries, name=name, metadata={"seed": seed})


class TestPointKeys:
    def test_key_is_stable_across_reconstruction(self):
        config = baseline_config()
        assert point_key([make_trace()], config) == point_key(
            [make_trace()], baseline_config()
        )

    def test_key_changes_with_config(self):
        trace = make_trace()
        base = point_key([trace], baseline_config())
        assert point_key([trace], baseline_config(scheduler_cap=8)) != base
        assert point_key([trace], baseline_config(entropy_seed=7)) != base

    def test_key_changes_with_trace_content(self):
        config = baseline_config()
        base = point_key([make_trace()], config)
        assert point_key([make_trace(seed=1)], config) != base
        assert point_key([make_trace(name="other")], config) != base

    def test_key_depends_on_trace_order(self):
        config = baseline_config()
        a, b = make_trace("a"), make_trace("b", rng=True)
        assert point_key([a, b], config) != point_key([b, a], config)


class TestResultCache:
    @pytest.fixture(scope="class")
    def simulated(self):
        trace = make_trace(rng=True)
        config = baseline_config()
        return trace, config, System([trace], config).run()

    def test_round_trip_is_exact(self, simulated):
        _, _, result = simulated
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored == result

    def test_disk_round_trip(self, tmp_path, simulated):
        trace, config, result = simulated
        key = point_key([trace], config)
        ResultCache(tmp_path).put(key, result)
        # A fresh instance simulates a new process reading the same directory.
        fresh = ResultCache(tmp_path)
        assert fresh.contains(key)
        assert fresh.get(key) == result
        assert fresh.hits == 1

    def test_miss_and_corrupted_entry(self, tmp_path, simulated):
        trace, config, result = simulated
        key = point_key([trace], config)
        cache = ResultCache(tmp_path)
        assert cache.get(key) is None
        cache.put(key, result)
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json", encoding="utf-8")
        assert ResultCache(tmp_path).get(key) is None

    def test_corrupt_entry_is_deleted_on_read(self, tmp_path, simulated):
        """A worker killed mid-write must not leave a poisoned entry behind."""
        trace, config, result = simulated
        key = point_key([trace], config)
        cache = ResultCache(tmp_path)
        cache.put(key, result)
        path = tmp_path / key[:2] / f"{key}.json"
        # Truncate mid-document, as a SIGKILL during a non-atomic write would.
        path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert not path.exists()
        assert len(fresh) == 0
        # The slot is immediately reusable.
        fresh.put(key, result)
        assert ResultCache(tmp_path).get(key) == result

    def test_schema_mismatch_is_a_miss_but_not_deleted(self, tmp_path, simulated):
        trace, config, result = simulated
        key = point_key([trace], config)
        ResultCache(tmp_path).put(key, result)
        path = tmp_path / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = -1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert ResultCache(tmp_path).get(key) is None
        assert path.exists()

    def test_stats_and_last_run_counters(self, tmp_path, simulated):
        trace, config, result = simulated
        cache = ResultCache(tmp_path)
        assert cache.stats() == {"entries": 0, "total_bytes": 0, "hits": 0, "misses": 0}
        cache.put(point_key([trace], config), result)
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["total_bytes"] > 0
        assert cache.last_run() is None
        cache.record_last_run({"executed": 1, "planned": 1, "reused": 0})
        recorded = ResultCache(tmp_path).last_run()
        assert recorded["executed"] == 1 and recorded["hits"] == 0
        cache.clear()
        assert cache.stats()["entries"] == 0
        assert cache.last_run() is None

    def test_config_change_invalidates(self, tmp_path, simulated):
        trace, config, result = simulated
        cache = ResultCache(tmp_path)
        cache.put(point_key([trace], config), result)
        changed = dataclasses.replace(config, scheduler_cap=4)
        assert cache.get(point_key([trace], changed)) is None

    def test_stats_counts_same_run_writes_once(self, tmp_path, simulated):
        """stats() snapshots the entry listing at read time.

        ``glob`` is lazy: counting straight off the iterator while the
        reported-on run is still writing can observe an entry twice (a
        directory mutated mid-scan re-yields paths) and so double-count
        entries written during that run.  The snapshot must dedupe.
        """
        trace, config, result = simulated
        cache = ResultCache(tmp_path)
        key = point_key([trace], config)
        cache.put(key, result)
        # Overwrites during the same run must not inflate the count.
        cache.put(key, result)
        assert cache.stats()["entries"] == 1 == len(cache)

        real_dir = cache.cache_dir
        late_key = point_key([trace], dataclasses.replace(config, scheduler_cap=4))

        class MutatingDuringScanDir:
            """Replays a lazy, duplicate-yielding directory scan: an entry
            is written *during* the iteration and every path comes back
            twice, as a mutated directory can produce."""

            def is_dir(self):
                return True

            def glob(self, pattern):
                first = list(real_dir.glob(pattern))
                yield from first
                ResultCache(real_dir).put(late_key, result)  # the same run writes…
                yield from first  # …and the scan re-yields what it already saw
                yield from real_dir.glob(pattern)

        cache.cache_dir = MutatingDuringScanDir()
        stats = cache.stats()
        cache.cache_dir = real_dir
        # One pre-existing entry plus the one written during the scan,
        # each counted exactly once.
        assert stats["entries"] == 2
        assert stats["entries"] == len(cache)


class TestPersistentAloneRunCache:
    def test_alone_runs_survive_processes(self, tmp_path):
        trace = make_trace()
        config = baseline_config()
        first = PersistentAloneRunCache(ResultCache(tmp_path))
        core, result = first.get(trace, config)
        assert first.misses == 1
        # A new cache over the same directory (fresh "process") hits disk.
        second = PersistentAloneRunCache(ResultCache(tmp_path))
        core2, result2 = second.get(trace, config)
        assert second.misses == 0
        assert second.hits == 1
        assert (core2, result2) == (core, result)


class TestPlanning:
    def test_plan_enumerates_without_polluting_caches(self):
        before = len(sim_runner.GLOBAL_ALONE_CACHE)
        units = plan_experiment(
            "fig6", apps=representative_subset(2), instructions=2_000
        )
        # 2 mixes x 3 designs shared runs + 3 alone runs (2 apps + rng).
        assert len(units) == 9
        assert len({unit.key for unit in units}) == len(units)
        assert len(sim_runner.GLOBAL_ALONE_CACHE) == before
        assert sim_runner.set_simulation_backend(None) is None

    def test_filter_run_kwargs(self):
        kwargs = {"instructions": 10, "full": True, "bogus": 1}
        filtered = filter_run_kwargs(fig6, kwargs)
        assert filtered == {"instructions": 10, "full": True}

    def test_resolve_accepts_id_module_and_module_basename(self):
        from repro.orchestration import resolve_experiment

        assert resolve_experiment("fig6") is fig6
        assert resolve_experiment(fig6) is fig6
        # sweep_experiments labels module inputs by basename; rendering
        # helpers must resolve those labels too.
        assert resolve_experiment("fig06_dualcore_performance") is fig6
        with pytest.raises(KeyError):
            resolve_experiment("fig99")


class TestSerialParallelEquivalence:
    def test_fig6_parallel_matches_serial_exactly(self, tmp_path):
        apps = representative_subset(2)
        kwargs = dict(apps=apps, instructions=4_000)
        serial = fig6.run(cache=AloneRunCache(), **kwargs)

        store = ResultCache(tmp_path)
        parallel = run_experiment("fig6", jobs=2, store=store, **kwargs)
        assert json.dumps(parallel, sort_keys=True) == json.dumps(serial, sort_keys=True)

        # Warm replay from the populated store: nothing recomputed.
        warm = run_experiment("fig6", jobs=2, store=store, **kwargs)
        assert json.dumps(warm, sort_keys=True) == json.dumps(serial, sort_keys=True)

    def test_in_memory_store_serial_path(self):
        kwargs = dict(apps=representative_subset(2), instructions=2_000)
        store = InMemoryResultStore()
        first = run_experiment("fig6", jobs=1, store=store, **kwargs)
        second = run_experiment("fig6", jobs=1, store=store, **kwargs)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert store.hits > 0


class TestCLI:
    def test_single_figure_with_json_export(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "fig5.json"
        code = main(
            ["fig5", "--instructions", "2000", "--cache-dir", str(tmp_path / "cache"), "--json", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 5" in captured.out
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["fig5"]["figure"] == "5"

    def test_sweep_requires_ids_and_rejects_unknown(self, capsys):
        from repro.__main__ import main

        assert main(["sweep"]) == 2
        assert main(["nope", "--no-cache"]) == 2
        assert main(["fig5", "fig6", "--no-cache"]) == 2

    def test_jobs_validation(self, capsys):
        from repro.__main__ import main

        assert main(["fig5", "--jobs", "0", "--no-cache"]) == 2

    def test_json_to_stdout_is_pipeable(self, capsys):
        from repro.__main__ import main

        code = main(["fig5", "--instructions", "2000", "--no-cache", "--json", "-"])
        assert code == 0
        captured = capsys.readouterr()
        # stdout must hold nothing but the JSON document (tables go to stderr).
        payload = json.loads(captured.out)
        assert payload["fig5"]["figure"] == "5"
        assert "Figure 5" in captured.err

    def test_executor_serial_flag_runs_orchestrated(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["fig5", "--instructions", "2000", "--executor", "serial",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 5" in captured.out
        # The plan → execute → replay pipeline ran (points were planned).
        assert "simulation points" in captured.err

    def test_workers_flag_requires_distributed_executor(self, capsys):
        from repro.__main__ import main

        assert main(["fig5", "--workers", "2", "--no-cache"]) == 2
        assert main(["fig5", "--executor", "distributed", "--bind", "nope", "--no-cache"]) == 2
        # --jobs sizes the local pool; rejecting the combination beats
        # silently running with different parallelism than requested.
        assert main(["fig5", "--jobs", "4", "--executor", "serial", "--no-cache"]) == 2
        assert main(["fig5", "--jobs", "4", "--executor", "distributed", "--no-cache"]) == 2

    def test_cache_subcommand_stats_and_clear(self, tmp_path, capsys):
        from repro.__main__ import main

        cache_dir = str(tmp_path / "cache")
        assert main(["fig5", "--instructions", "2000", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "entries:" in captured.out and "last run:" in captured.out
        # The run above recorded its planned/executed counters.
        assert "executed" in captured.out

        assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "entries:     0" in captured.out


class TestSweepRequest:
    def test_normalises_experiments(self):
        from repro.orchestration import SweepRequest

        request = SweepRequest(experiments=" Fig5 ")
        assert request.experiments == ("fig5",)
        assert SweepRequest(experiments=["FIG5", "fig6 "]).experiments == ("fig5", "fig6")

    def test_validates_fields(self):
        from repro.orchestration import SweepRequest

        with pytest.raises(ValueError):
            SweepRequest(experiments=())
        with pytest.raises(ValueError):
            SweepRequest(experiments=("fig5",), instructions=0)
        with pytest.raises(ValueError):
            SweepRequest(experiments=("fig5",), engine="warp")
        with pytest.raises(ValueError):
            SweepRequest(experiments=("fig5",), priority="urgent")

    def test_is_frozen(self):
        from repro.orchestration import SweepRequest

        request = SweepRequest(experiments=("fig5",))
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.full = True

    def test_wire_round_trip_and_tolerance(self):
        from repro.orchestration import SweepRequest

        request = SweepRequest(
            experiments=("fig5", "fig6"),
            instructions=2000,
            full=True,
            engine="tick",
            priority="batch",
            tags=("nightly",),
        )
        assert SweepRequest.from_wire(request.to_wire()) == request
        # Defaults are omitted from the wire form…
        assert SweepRequest(experiments=("fig5",)).to_wire() == {"experiments": ["fig5"]}
        # …and unknown keys from newer peers are ignored, not fatal.
        payload = dict(request.to_wire(), deadline="soon")
        assert SweepRequest.from_wire(payload) == request
        with pytest.raises(TypeError):
            SweepRequest.from_wire("fig5")

    def test_run_kwargs_carries_only_set_fields(self):
        from repro.orchestration import SweepRequest

        assert SweepRequest(experiments=("fig5",)).run_kwargs() == {}
        assert SweepRequest(experiments=("fig5",), instructions=500, full=True).run_kwargs() == {
            "instructions": 500,
            "full": True,
        }


class TestParseTarget:
    def test_local_process_and_service_specs(self):
        from repro.orchestration import parse_target

        assert parse_target("local").kind == "local"
        pool = parse_target("process:4")
        assert (pool.kind, pool.jobs) == ("process", 4)
        assert parse_target("process").jobs == 0  # sized later (cpu count)
        service = parse_target("10.0.0.7:9876")
        assert (service.kind, service.address) == ("service", ("10.0.0.7", 9876))

    def test_rejects_malformed_specs(self):
        from repro.orchestration import parse_target

        for bad in ("", "process:0", "process:x", "nowhere", "host:", ":80", "host:99999"):
            with pytest.raises(ValueError):
                parse_target(bad)


class TestRequestDrivenSweep:
    def test_request_sweep_matches_legacy_call(self):
        from repro.orchestration import SweepRequest, SweepResult, sweep_experiments

        request = SweepRequest(experiments=("fig6",), instructions=1500)
        result = sweep_experiments(request, store=InMemoryResultStore())
        assert isinstance(result, SweepResult)
        assert result.request is request
        assert result.stats.planned > 0
        with pytest.warns(DeprecationWarning):
            legacy = sweep_experiments(
                ["fig6"], store=InMemoryResultStore(), instructions=1500
            )
        assert dict(result) == legacy

    def test_run_experiment_accepts_request_and_legacy_form(self):
        from repro.orchestration import SweepRequest, SweepResult

        result = run_experiment(
            SweepRequest(experiments=("fig6",), instructions=1500),
            store=InMemoryResultStore(),
        )
        assert isinstance(result, SweepResult)
        with pytest.warns(DeprecationWarning):
            legacy = run_experiment(
                "fig6", store=InMemoryResultStore(), instructions=1500
            )
        assert result["fig6"] == legacy

    def test_request_owned_kwargs_cannot_be_overridden(self):
        from repro.orchestration import SweepRequest, sweep_experiments

        request = SweepRequest(experiments=("fig6",), instructions=1500)
        with pytest.raises(TypeError, match="instructions"):
            sweep_experiments(request, store=InMemoryResultStore(), instructions=99)


class TestManifestPruning:
    def test_clear_prunes_orphaned_run_manifests(self, tmp_path):
        from repro.telemetry.manifest import MANIFEST_DIR, list_manifests, write_manifest

        cache = ResultCache(tmp_path)
        write_manifest(tmp_path, experiments=["fig5"], started_at=1.0)
        assert len(list_manifests(tmp_path)) == 1
        stray = tmp_path / MANIFEST_DIR / "not-a-manifest.json.tmp"
        stray.write_text("{}", encoding="utf-8")
        cache.clear()
        # Entries are gone, and so are the manifests describing them.
        assert list_manifests(tmp_path) == []
        assert not stray.exists()


class TestTargetCLI:
    def test_deprecated_executor_flag_warns_and_still_works(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["fig5", "--instructions", "2000", "--executor", "serial",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err and "--target" in captured.err

    def test_target_conflicts_with_deprecated_flags(self, capsys):
        from repro.__main__ import main

        assert main(["fig5", "--target", "local", "--executor", "serial", "--no-cache"]) == 2
        assert main(["fig5", "--target", "nope", "--no-cache"]) == 2

    def test_target_local_runs_serial(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["fig5", "--instructions", "2000", "--target", "local",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 5" in captured.out
        assert "deprecated" not in captured.err
