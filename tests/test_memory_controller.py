"""Tests for the channel memory controller."""


from repro.controller.config import ControllerConfig
from repro.controller.memory_controller import ChannelController, ExecutionMode
from repro.controller.request import make_read, make_rng, make_write
from repro.dram.dram_system import DRAMSystem
from repro.trng.drange import DRaNGe


def make_controller(separate_rng_queue=False, config=None, channel_id=0):
    dram = DRAMSystem()
    controller = ChannelController(
        channel=dram.channels[channel_id],
        dram=dram,
        config=config or ControllerConfig(),
        trng=DRaNGe(),
        separate_rng_queue=separate_rng_queue,
    )
    return dram, controller


def run_cycles(controller, start, count):
    for cycle in range(start, start + count):
        controller.tick(cycle)
    return start + count


def address_for(dram, channel_id, bank=0, row=0, column=0):
    return dram.mapping.encode(channel=channel_id, bank=bank, row=row, column=column)


class TestEnqueueAndRouting:
    def test_read_goes_to_read_queue(self):
        dram, controller = make_controller()
        assert controller.enqueue(make_read(address_for(dram, 0), 0, 0))
        assert len(controller.read_queue) == 1
        assert len(controller.write_queue) == 0

    def test_write_goes_to_write_queue(self):
        dram, controller = make_controller()
        assert controller.enqueue(make_write(address_for(dram, 0), 0, 0))
        assert len(controller.write_queue) == 1

    def test_rng_goes_to_read_queue_without_separate_queue(self):
        dram, controller = make_controller(separate_rng_queue=False)
        assert controller.enqueue(make_rng(16, 0, 0))
        assert len(controller.read_queue) == 1
        assert controller.rng_queue is None

    def test_rng_goes_to_rng_queue_when_enabled(self):
        dram, controller = make_controller(separate_rng_queue=True)
        assert controller.enqueue(make_rng(16, 0, 0))
        assert len(controller.rng_queue) == 1
        assert len(controller.read_queue) == 0

    def test_full_queue_rejects(self):
        config = ControllerConfig(
            read_queue_capacity=2, write_queue_capacity=2, write_drain_high=2, write_drain_low=1
        )
        dram, controller = make_controller(config=config)
        assert controller.enqueue(make_read(address_for(dram, 0), 0, 0))
        assert controller.enqueue(make_read(address_for(dram, 0, row=1), 0, 0))
        assert not controller.enqueue(make_read(address_for(dram, 0, row=2), 0, 0))


class TestReadService:
    def test_read_completes_with_callback(self):
        dram, controller = make_controller()
        completed = []
        request = make_read(address_for(dram, 0), 0, 0, callback=completed.append)
        controller.enqueue(request)
        run_cycles(controller, 0, 200)
        assert completed == [request]
        assert request.completion_cycle is not None
        assert controller.stats.served_reads == 1

    def test_row_hit_served_faster_than_conflict(self):
        dram, controller = make_controller()
        latencies = {}
        first = make_read(address_for(dram, 0, bank=0, row=1), 0, 0)
        controller.enqueue(first)
        run_cycles(controller, 0, 200)

        hit = make_read(address_for(dram, 0, bank=0, row=1, column=4), 0, 200)
        controller.enqueue(hit)
        run_cycles(controller, 200, 200)
        latencies["hit"] = hit.completion_cycle - hit.arrival_cycle

        conflict = make_read(address_for(dram, 0, bank=0, row=2), 0, 400)
        controller.enqueue(conflict)
        run_cycles(controller, 400, 200)
        latencies["conflict"] = conflict.completion_cycle - conflict.arrival_cycle
        assert latencies["hit"] < latencies["conflict"]

    def test_multiple_reads_all_complete(self):
        dram, controller = make_controller()
        requests = [make_read(address_for(dram, 0, bank=b, row=b), 0, 0) for b in range(8)]
        for request in requests:
            controller.enqueue(request)
        run_cycles(controller, 0, 600)
        assert all(r.completion_cycle is not None for r in requests)
        assert controller.stats.served_reads == 8


class TestWriteDrain:
    def test_writes_drain_when_queue_fills(self):
        config = ControllerConfig(write_drain_high=4, write_drain_low=1)
        dram, controller = make_controller(config=config)
        for i in range(4):
            controller.enqueue(make_write(address_for(dram, 0, bank=i % 8, row=i), 0, 0))
        run_cycles(controller, 0, 400)
        assert controller.stats.served_writes >= 3

    def test_writes_served_opportunistically_when_no_reads(self):
        dram, controller = make_controller()
        controller.enqueue(make_write(address_for(dram, 0), 0, 0))
        run_cycles(controller, 0, 200)
        assert controller.stats.served_writes == 1


class TestRNGDemand:
    def test_rng_request_served_in_rng_mode(self):
        dram, controller = make_controller()
        completed = []
        request = make_rng(16, 0, 0, callback=completed.append)
        controller.enqueue(request)
        run_cycles(controller, 0, 500)
        assert completed == [request]
        assert controller.stats.served_rng_demand == 1
        assert controller.stats.rng_mode_cycles > 0
        assert controller.mode is ExecutionMode.REGULAR

    def test_rng_latency_at_least_demand_latency(self):
        dram, controller = make_controller()
        request = make_rng(16, 0, 0)
        controller.enqueue(request)
        run_cycles(controller, 0, 600)
        expected = controller.trng.demand_latency_cycles(16, 4, 8, 800.0)
        assert request.completion_cycle - request.arrival_cycle >= expected

    def test_rng_blocks_concurrent_regular_read(self):
        dram, controller = make_controller()
        rng = make_rng(16, 0, 0)
        controller.enqueue(rng)
        run_cycles(controller, 0, 5)
        read = make_read(address_for(dram, 0), 1, 5)
        controller.enqueue(read)
        run_cycles(controller, 5, 600)
        assert read.completion_cycle > rng.completion_cycle

    def test_back_to_back_rng_requests_chain(self):
        dram, controller = make_controller()
        first, second = make_rng(16, 0, 0), make_rng(16, 0, 0)
        controller.enqueue(first)
        controller.enqueue(second)
        run_cycles(controller, 0, 1000)
        assert controller.stats.served_rng_demand == 2
        assert controller.stats.rng_chained_demand >= 1


class TestIdleTracking:
    def test_idle_period_recorded_on_request_arrival(self):
        dram, controller = make_controller()
        run_cycles(controller, 0, 100)
        controller.enqueue(make_read(address_for(dram, 0), 0, 100))
        assert controller.stats.idle_periods
        assert controller.stats.idle_periods[0] >= 90

    def test_idle_listener_invoked(self):
        dram, controller = make_controller()
        observed = []
        controller.add_idle_period_listener(lambda ch, length, addr: observed.append((ch, length)))
        run_cycles(controller, 0, 50)
        controller.enqueue(make_read(address_for(dram, 0), 0, 50))
        assert observed and observed[0][0] == controller.channel_id

    def test_flush_idle_period(self):
        dram, controller = make_controller()
        run_cycles(controller, 0, 30)
        controller.flush_idle_period()
        assert controller.stats.idle_periods == [30]
        assert controller.idle_streak == 0

    def test_busy_and_idle_cycles_partition_time(self):
        dram, controller = make_controller()
        controller.enqueue(make_read(address_for(dram, 0), 0, 0))
        run_cycles(controller, 0, 100)
        stats = controller.stats
        assert stats.idle_cycles + stats.busy_cycles + stats.rng_mode_cycles == 100


class TestServeBatch:
    """serve_batch must replay the per-cycle tick sequence exactly.

    Two identical controllers receive the same requests; one is ticked
    cycle by cycle (the reference), the other resolves the same window in
    one serve_batch call.  Every observable — serve counters, cycle
    classification, occupancy sampling, queue state, bank/bus state and
    in-flight completions — must match, under the window preconditions
    the engine guarantees (no arrivals, no RNG work, no scheduler event,
    no fill policy, window within the minimum read-completion distance).
    """

    @staticmethod
    def _loaded_pair(requests_factory):
        pairs = []
        for _ in range(2):
            dram, controller = make_controller()
            for request in requests_factory(dram):
                assert controller.enqueue(request)
            pairs.append((dram, controller))
        return pairs

    @staticmethod
    def _state(controller):
        channel = controller.channel
        return {
            "served_reads": controller.stats.served_reads,
            "served_writes": controller.stats.served_writes,
            "busy_cycles": controller.stats.busy_cycles,
            "idle_cycles": controller.stats.idle_cycles,
            "idle_streak": controller.idle_streak,
            "occupancy_samples": controller.read_queue.occupancy_samples,
            "occupancy_sum": controller.read_queue.occupancy_sum,
            "read_queue": [r.request_id for r in controller.read_queue],
            "write_queue": [r.request_id for r in controller.write_queue],
            "inflight": sorted(entry[0] for entry in controller._inflight),
            "bus_free_at": channel.bus_free_at,
            "open_rows": [bank.open_row for bank in channel.banks],
            "completions": sorted(
                r.completion_cycle
                for r in controller.read_queue._entries + controller.write_queue._entries
                if r.completion_cycle is not None
            ),
        }

    def test_serve_batch_matches_per_cycle_ticks_for_reads(self):
        def reads(dram):
            # request_id differs between the twin controllers, so compare
            # structure via counts/cycles rather than ids for this case.
            return [make_read(address_for(dram, 0, bank=i % 4, row=i), 0, 0) for i in range(6)]

        (_, reference), (_, batched) = self._loaded_pair(reads)
        window = batched.channel.min_read_completion_distance(batched.config.backend_latency)
        for cycle in range(window):
            reference.tick(cycle)
        reference.catch_up(window)
        batched.serve_batch(0, window)
        batched.catch_up(window)
        ref_state, batch_state = self._state(reference), self._state(batched)
        ref_state.pop("read_queue"), batch_state.pop("read_queue")
        ref_state.pop("write_queue"), batch_state.pop("write_queue")
        assert batch_state == ref_state

    def test_serve_batch_matches_per_cycle_ticks_for_writes(self):
        def writes(dram):
            return [make_write(address_for(dram, 0, bank=3, row=9 + i), 0, 0) for i in range(3)]

        (_, reference), (_, batched) = self._loaded_pair(writes)
        # The engine caps write-only windows at cycle + pending writes
        # (the busy streak may lapse after the last issue); mirror that.
        window = 3
        for cycle in range(window):
            reference.tick(cycle)
        reference.catch_up(window)
        batched.serve_batch(0, window)
        batched.catch_up(window)
        ref_state, batch_state = self._state(reference), self._state(batched)
        ref_state.pop("read_queue"), batch_state.pop("read_queue")
        ref_state.pop("write_queue"), batch_state.pop("write_queue")
        assert batch_state == ref_state
        assert batched.stats.served_writes > 0

    def test_serve_batch_primes_a_consistent_event_bound(self):
        def reads(dram):
            return [make_read(address_for(dram, 0, bank=i % 4, row=i), 0, 0) for i in range(8)]

        (_, batched), (_, fresh) = self._loaded_pair(reads)
        window = 12
        batched.serve_batch(0, window)
        primed = batched._bound_cache if batched._bound_cache_valid else None
        # Replaying the same history on the twin and recomputing from
        # scratch must agree with the primed bound.
        fresh.serve_batch(0, window)
        fresh._bound_cache_valid = False
        assert primed is not None
        assert fresh.next_event_cycle(window) == primed
