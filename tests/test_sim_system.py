"""Integration tests for system assembly and single simulations."""

import pytest

from repro.core.config import DRStrangeConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.config import baseline_config, drstrange_config, greedy_config
from repro.sim.system import System, simulate
from repro.workloads.mixes import build_traces, dual_core_mixes
from repro.workloads.spec import ApplicationSpec
from repro.workloads.synthetic import generate_application_trace


@pytest.fixture(scope="module")
def small_app_trace():
    spec = ApplicationSpec("sys-test-app", mpki=8.0, row_locality=0.5)
    return generate_application_trace(spec, 4_000, seed=0)


class TestSystemAssembly:
    def test_baseline_has_no_buffer_or_predictors(self, small_app_trace):
        system = System([small_app_trace], baseline_config())
        assert system.buffer is None
        assert not system.predictors
        assert all(controller.rng_queue is None for controller in system.controllers)

    def test_drstrange_has_buffer_predictors_and_rng_queues(self, small_app_trace):
        system = System([small_app_trace], drstrange_config())
        assert system.buffer is not None
        assert len(system.predictors) == 4
        assert all(controller.rng_queue is not None for controller in system.controllers)

    def test_greedy_has_buffer_but_no_predictors(self, small_app_trace):
        system = System([small_app_trace], greedy_config())
        assert system.buffer is not None
        assert not system.predictors

    def test_rl_predictor_selected(self, small_app_trace):
        config = drstrange_config(drstrange=DRStrangeConfig(predictor="rl"))
        system = System([small_app_trace], config)
        from repro.core.rl_predictor import QLearningIdlenessPredictor

        assert all(isinstance(p, QLearningIdlenessPredictor) for p in system.predictors.values())

    def test_priorities_derived_from_mode(self):
        mix = dual_core_mixes()[0]
        traces = build_traces(mix, 2_000, seed=0)
        system = System(traces, drstrange_config(priority_mode="rng-high"))
        assert system.registry.priority(1) > system.registry.priority(0)
        system = System(traces, drstrange_config(priority_mode="non-rng-high"))
        assert system.registry.priority(0) > system.registry.priority(1)

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            System([], baseline_config())


class TestSingleCoreRuns:
    def test_compute_only_trace_has_no_memory_stalls(self):
        trace = Trace([TraceEntry(bubbles=3_000)], name="compute")
        result = simulate([trace], baseline_config())
        core = result.cores[0]
        assert core.memory_stall_cycles == 0
        assert core.instructions >= 3_000

    def test_memory_trace_completes_all_reads(self, small_app_trace):
        result = simulate([small_app_trace], baseline_config())
        core = result.cores[0]
        assert core.reads > 0
        assert core.cycles > 0
        assert result.total_cycles >= core.cycles

    def test_higher_mpki_runs_longer(self):
        light = generate_application_trace(ApplicationSpec("l", mpki=1.0), 4_000, seed=0)
        heavy = generate_application_trace(ApplicationSpec("h", mpki=25.0), 4_000, seed=0)
        light_result = simulate([light], baseline_config())
        heavy_result = simulate([heavy], baseline_config())
        assert heavy_result.cores[0].cycles > light_result.cores[0].cycles

    def test_cycle_limit_guard(self, small_app_trace):
        config = baseline_config(max_cycles=50)
        system = System([small_app_trace], config)
        system.run()
        assert system.hit_cycle_limit

    def test_energy_reported(self, small_app_trace):
        result = simulate([small_app_trace], baseline_config())
        assert result.energy.total_nj > 0

    def test_channel_cycle_accounting(self, small_app_trace):
        result = simulate([small_app_trace], baseline_config())
        for channel in result.channels:
            assert channel.total_cycles == result.total_cycles
            assert 0.0 <= channel.utilization <= 1.0


class TestRNGWorkloadRuns:
    @pytest.fixture(scope="class")
    def mix_traces(self):
        mix = dual_core_mixes()[2]
        return build_traces(mix, 12_000, seed=0)

    def test_baseline_serves_rng_demand(self, mix_traces):
        result = simulate(mix_traces, baseline_config())
        assert result.rng_requests > 0
        assert result.buffer_serves == 0
        assert sum(c.served_rng_demand for c in result.channels) > 0

    def test_drstrange_uses_buffer(self, mix_traces):
        result = simulate(mix_traces, drstrange_config())
        assert result.buffer_serves > 0
        assert 0.0 < result.buffer_serve_rate <= 1.0
        assert result.predictor_accuracy is not None
        assert sum(c.rng_fill_bits for c in result.channels) > 0

    def test_greedy_never_enters_rng_fill_mode(self, mix_traces):
        result = simulate(mix_traces, greedy_config())
        assert sum(c.rng_fill_batches for c in result.channels) == 0
        assert result.buffer_serves > 0

    def test_rng_core_flagged(self, mix_traces):
        result = simulate(mix_traces, drstrange_config())
        assert not result.cores[0].is_rng
        assert result.cores[1].is_rng
        assert result.rng_cores and result.non_rng_cores

    def test_scheduler_stats_present_for_rng_aware_designs(self, mix_traces):
        result = simulate(mix_traces, drstrange_config())
        assert "rng_queue_choices" in result.scheduler_stats

    def test_deterministic_given_same_inputs(self, mix_traces):
        a = simulate(mix_traces, drstrange_config())
        b = simulate(mix_traces, drstrange_config())
        assert a.total_cycles == b.total_cycles
        assert [c.cycles for c in a.cores] == [c.cycles for c in b.cores]
