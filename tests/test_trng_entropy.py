"""Tests for the simulated entropy source."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trng.entropy import EntropySource, ProcessVariationModel


class TestProcessVariationModel:
    def test_probabilities_in_unit_interval(self):
        model = ProcessVariationModel()
        probabilities = model.sample_cell_probabilities(1000, np.random.default_rng(0))
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_probabilities_centred_near_half(self):
        model = ProcessVariationModel()
        probabilities = model.sample_cell_probabilities(5000, np.random.default_rng(0))
        assert abs(float(probabilities.mean()) - 0.5) < 0.05

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProcessVariationModel(alpha=0)
        with pytest.raises(ValueError):
            ProcessVariationModel(rng_cell_fraction=0)
        with pytest.raises(ValueError):
            ProcessVariationModel().sample_cell_probabilities(0, np.random.default_rng(0))


class TestEntropySource:
    def test_deterministic_with_seed(self):
        a = EntropySource(seed=42).generate_bits(512)
        b = EntropySource(seed=42).generate_bits(512)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = EntropySource(seed=1).generate_bits(512)
        b = EntropySource(seed=2).generate_bits(512)
        assert not np.array_equal(a, b)

    def test_generate_exact_count(self):
        source = EntropySource(seed=0)
        for count in (1, 7, 64, 1000):
            assert len(source.generate_bits(count)) == count

    def test_zero_count(self):
        assert len(EntropySource(seed=0).generate_bits(0)) == 0

    def test_debiased_stream_is_balanced(self):
        bits = EntropySource(seed=3).generate_bits(20_000)
        assert abs(float(bits.mean()) - 0.5) < 0.02

    def test_generate_bytes(self):
        data = EntropySource(seed=0).generate_bytes(32)
        assert isinstance(data, bytes)
        assert len(data) == 32

    def test_generate_integer_width(self):
        source = EntropySource(seed=0)
        for bits in (1, 8, 64, 128):
            assert 0 <= source.generate_integer(bits) < (1 << bits)

    def test_debias_efficiency_reported(self):
        source = EntropySource(seed=0)
        source.generate_bits(1000)
        assert 0.0 < source.debias_efficiency <= 1.0

    def test_invalid_arguments(self):
        source = EntropySource(seed=0)
        with pytest.raises(ValueError):
            source.generate_bits(-1)
        with pytest.raises(ValueError):
            source.generate_integer(0)
        with pytest.raises(ValueError):
            EntropySource(num_cells=0)


class TestVonNeumann:
    def test_known_pairs(self):
        bits = np.array([0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint8)
        out = EntropySource.von_neumann(bits)
        assert out.tolist() == [0, 1]

    def test_empty_and_single(self):
        assert len(EntropySource.von_neumann(np.array([], dtype=np.uint8))) == 0
        assert len(EntropySource.von_neumann(np.array([1], dtype=np.uint8))) == 0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=400))
    def test_output_never_longer_than_half_input(self, bits):
        array = np.array(bits, dtype=np.uint8)
        out = EntropySource.von_neumann(array)
        assert len(out) <= len(array) // 2
        assert set(out.tolist()) <= {0, 1}

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=1, max_value=100))
    def test_constant_input_yields_nothing(self, value, length):
        array = np.full(length, value, dtype=np.uint8)
        assert len(EntropySource.von_neumann(array)) == 0
