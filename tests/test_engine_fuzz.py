"""Differential fuzzing of the tick, event and compiled simulation engines.

The structured equivalence suite (:mod:`tests.test_engine_equivalence`)
pins the known-interesting corners; this harness defends the corners
nobody thought of.  A seeded generator draws hundreds of random systems —
core counts, memory intensities, RNG throughputs, schedulers, predictors,
buffer sizes, queue capacities, channel topologies, issue lookaheads,
cycle limits — and for every generated system asserts that

* the reference :class:`~repro.sim.engine.TickEngine`, the
  cycle-skipping :class:`~repro.sim.engine.EventEngine` (including its
  batched-serve fast path) and the config-specialised
  :class:`~repro.sim.engine.CompiledEngine` (source generated and
  compiled per case by :mod:`repro.sim.codegen`) produce
  **bit-identical** :class:`~repro.sim.results.SimulationResult`s, and
* the content-addressed cache key of the simulation point is stable:
  identical across all three engines (the key deliberately excludes the
  engine) and across recomputation, with a periodic store round-trip
  proving a cached result deserialises bit-identically, and
* **checkpoint/restore is invisible**: pausing each engine at a
  case-chosen random cycle, snapshotting the kernel
  (:mod:`repro.sim.checkpoint`), restoring from the bytes and finishing
  produces results bit-identical to the uninterrupted run — and the
  snapshot's content digest is stable across a restore.  The compiled
  engine additionally proves *cross-engine* resumability: snapshot under
  ``compiled``, resume under ``tick``, byte-identical.  A slice of the
  cases round-trips the snapshot through an on-disk
  :class:`~repro.orchestration.cache.CheckpointStore` in a per-case
  directory (isolated so no state leaks between cases).

On failure the harness *shrinks* the case: it greedily applies
simplifying transformations (drop a core, halve the instruction count,
fall back to the default scheduler/predictor/design/topology, drop the
checkpoint axis, drop the compiled-engine axis — a failure that
survives without ``compiled`` is an interpreter bug, one that does not
is a codegen bug…) while the failure reproduces, and reports the
minimal case as a parameter dict plus the checkpoint cycle it paused
at.  Paste that dict into :func:`run_case` to replay it under a
debugger.

Knobs (environment variables):

``REPRO_FUZZ_SEED``
    Master seed of the generator (default 0).  CI pins it per schedule so
    nightly runs explore fresh cases while a failure stays reproducible.
``REPRO_FUZZ_CASES``
    Number of generated systems (default 200).  The per-push CI slice
    runs 50; nightly runs the full budget.
"""

from __future__ import annotations

import dataclasses
import os
import random

import pytest

from repro.controller.config import ControllerConfig
from repro.core.config import DRStrangeConfig
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization
from repro.orchestration.cache import CheckpointStore, ResultCache
from repro.orchestration.keys import point_key
from repro.sim import checkpoint
from repro.sim.config import ENGINE_COMPILED, ENGINE_EVENT, ENGINE_TICK, SimulationConfig
from repro.sim.system import System
from repro.workloads.rng_benchmark import generate_rng_trace
from repro.workloads.spec import ApplicationSpec, RNGBenchmarkSpec
from repro.workloads.synthetic import generate_application_trace

MASTER_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
NUM_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "200"))

#: Upper bound on shrink attempts so a pathological failure cannot stall
#: the suite; the counter-example is still reported, just less minimal.
MAX_SHRINK_EVALUATIONS = 80


# ----------------------------------------------------------------- generation


#: Adversarial entry shapes for the "edge" slot kind: traces a workload
#: generator would never emit but the text format and the compiled
#: columns must both replay exactly (zero-bubble back-to-back reads,
#: write-only stretches, pure RNG bursts).
EDGE_PATTERNS = ("zero-bubble-reads", "write-only", "rng-only", "mixed-extremes")


def build_case(rng: random.Random, index: int) -> dict:
    """Draw one random system description (everything a replay needs)."""
    num_slots = rng.choice((1, 1, 2, 2, 2, 3, 3, 4))
    slots = []
    for _ in range(num_slots):
        draw = rng.random()
        if draw < 0.4:
            slots.append(
                {
                    "kind": "rng",
                    "throughput_mbps": rng.choice((640.0, 1280.0, 2560.0, 5120.0)),
                }
            )
        elif draw < 0.5:
            slots.append({"kind": "edge", "pattern": rng.choice(EDGE_PATTERNS)})
        else:
            slots.append(
                {
                    "kind": "app",
                    "mpki": round(rng.choice((0.5, 2.0, 6.0, 15.0, 30.0)) * rng.uniform(0.5, 1.5), 3),
                    "row_locality": round(rng.uniform(0.1, 0.95), 3),
                    "write_fraction": round(rng.uniform(0.0, 0.45), 3),
                    "footprint_rows": rng.choice((8, 64, 256)),
                }
            )
    return {
        # Round-trip every trace through the text serialisation before
        # precompilation for a slice of the cases: parse(format(t)) must
        # compile to the same columns and replay bit-identically.
        "text_roundtrip": rng.random() < 0.25,
        "seed": rng.randrange(2**31),
        "index": index,
        "instructions": rng.choice((600, 1000, 1500, 2500)),
        "slots": slots,
        "design": rng.choice(("rng-oblivious", "greedy-idle", "dr-strange", "dr-strange")),
        "scheduler": rng.choice(("fr-fcfs", "fr-fcfs+cap", "bliss")),
        "scheduler_cap": rng.choice((2, 4, 16)),
        "predictor": rng.choice(("none", "simple", "rl")),
        "buffer_entries": rng.choice((0, 1, 4, 16)),
        "low_utilization_threshold": rng.choice((0, 2, 4)),
        "period_threshold": rng.choice((10, 40)),
        "channels": rng.choice((1, 2, 4)),
        "banks_per_rank": rng.choice((4, 8)),
        "read_queue_capacity": rng.choice((2, 8, 32)),
        "write_queue_capacity": rng.choice((2, 8, 32)),
        "write_drain_high": rng.choice((2, 8, 16)),
        "issue_lookahead": rng.choice((0, 2, 8)),
        "backend_latency": rng.choice((0, 4, 10)),
        "rng_mode_switch_penalty": rng.choice((0, 6, 12)),
        "issue_width": rng.choice((1, 2, 3)),
        "window_size": rng.choice((8, 32, 128)),
        "clock_ratio": rng.choice((1, 3, 5)),
        "priority_mode": rng.choice(("equal", "rng-high", "non-rng-high")),
        "max_cycles": rng.choice((1_500, 40_000, 5_000_000)),
        # Where the checkpoint axis pauses, as a fraction of the straight
        # run's final cycle (the absolute cycle count varies per case).
        "checkpoint_fraction": round(rng.uniform(0.05, 0.95), 3),
    }


def _edge_trace(pattern: str, instructions: int, seed: int, row_offset: int) -> Trace:
    """Build a trace of adversarial entries the generators never emit.

    Edge traces are nearly bubble-free, so every "instruction" is a
    memory or RNG request — orders of magnitude more simulated work per
    instruction than a generated application.  The adversarial body is
    therefore capped, and a long pure-bubble tail closes the trace: the
    shapes are what matter, and the tail keeps the wrapped replay (a
    finished core keeps executing for interference) from flooding the
    memory system every cycle for the co-runners' whole lifetime, which
    made single cases blow the fuzz budget.
    """
    instructions = min(instructions, 150)
    rng = random.Random(seed)
    entries = []
    count = 0
    base = row_offset * 8192
    index = 0
    while count < instructions:
        address = base + (index % 97) * 64
        if pattern == "zero-bubble-reads":
            entry = TraceEntry(bubbles=0, address=address)
        elif pattern == "write-only":
            # Pure writebacks carry no instructions; a sparse bubble
            # keeps the trace's instruction count positive (a core needs
            # a positive retirement target).
            if index % 8 == 7:
                entry = TraceEntry(bubbles=1, write_address=address)
            else:
                entry = TraceEntry(bubbles=0, write_address=address)
        elif pattern == "rng-only":
            entry = TraceEntry(bubbles=0, rng_bits=64)
        else:  # mixed-extremes: every field set, including all-at-once rows
            entry = TraceEntry(
                bubbles=rng.choice((0, 0, 1, 1000)),
                address=address if rng.random() < 0.5 else None,
                write_address=address + 64 if rng.random() < 0.5 else None,
                rng_bits=64 if rng.random() < 0.3 else 0,
            )
        entries.append(entry)
        count += entry.instruction_count
        index += 1
        if index > 50 * instructions + 100:  # pragma: no cover - safety bound
            break
    entries.append(TraceEntry(bubbles=max(1000, 4 * instructions)))
    return Trace(entries, name=f"fuzz-edge-{pattern}-{seed}", metadata={"seed": seed})


def text_roundtrip(trace: Trace) -> Trace:
    """Round-trip a trace through the text format, keeping its identity."""
    return Trace.parse(trace.format(), name=trace.name, metadata=trace.metadata)


def materialize(case: dict):
    """Build the traces and (engine-less) config a case describes."""
    drain_high = min(case["write_drain_high"], case["write_queue_capacity"])
    config = SimulationConfig(
        design=case["design"],
        scheduler=case["scheduler"],
        scheduler_cap=case["scheduler_cap"],
        priority_mode=case["priority_mode"],
        drstrange=DRStrangeConfig(
            predictor=case["predictor"],
            buffer_entries=case["buffer_entries"],
            low_utilization_threshold=case["low_utilization_threshold"],
            period_threshold=case["period_threshold"],
        ),
        controller=ControllerConfig(
            read_queue_capacity=case["read_queue_capacity"],
            write_queue_capacity=case["write_queue_capacity"],
            write_drain_high=drain_high,
            write_drain_low=max(0, min(ControllerConfig.write_drain_low, drain_high - 1)),
            issue_lookahead=case["issue_lookahead"],
            backend_latency=case["backend_latency"],
            rng_mode_switch_penalty=case["rng_mode_switch_penalty"],
        ),
        core=CoreConfig(
            issue_width=case["issue_width"],
            window_size=case["window_size"],
            clock_ratio=case["clock_ratio"],
        ),
        organization=DRAMOrganization(
            channels=case["channels"], banks_per_rank=case["banks_per_rank"]
        ),
        max_cycles=case["max_cycles"],
    )
    mapping = AddressMapping(config.organization)
    traces = []
    for slot_id, slot in enumerate(case["slots"]):
        seed = case["seed"] + slot_id * 7919
        row_offset = slot_id * 4096
        if slot["kind"] == "edge":
            traces.append(_edge_trace(slot["pattern"], case["instructions"], seed, slot_id))
        elif slot["kind"] == "rng":
            spec = RNGBenchmarkSpec(
                f"fuzz-rng-{slot_id}", throughput_mbps=slot["throughput_mbps"]
            )
            traces.append(
                generate_rng_trace(
                    spec, case["instructions"], seed=seed, mapping=mapping, row_offset=row_offset
                )
            )
        else:
            spec = ApplicationSpec(
                f"fuzz-app-{slot_id}",
                mpki=slot["mpki"],
                row_locality=slot["row_locality"],
                write_fraction=slot["write_fraction"],
                footprint_rows=slot["footprint_rows"],
            )
            traces.append(
                generate_application_trace(
                    spec, case["instructions"], seed=seed, mapping=mapping, row_offset=row_offset
                )
            )
    if case.get("text_roundtrip"):
        traces = [text_roundtrip(trace) for trace in traces]
    return traces, config


def run_case(case: dict, engine: str):
    """Replay one fuzz case under ``engine`` and return its result."""
    traces, config = materialize(case)
    return System(traces, dataclasses.replace(config, engine=engine)).run()


# ----------------------------------------------------------------- checking


def check_case(
    case: dict, store: ResultCache | None = None, checkpoint_dir=None
):
    """Return a failure description for ``case``, or ``None`` if it holds.

    ``checkpoint_dir`` (a per-case directory — never shared, so no state
    leaks between cases) additionally round-trips the mid-run snapshot
    through an on-disk :class:`CheckpointStore` instead of raw bytes.
    """
    traces, config = materialize(case)
    tick_config = dataclasses.replace(config, engine=ENGINE_TICK)
    event_config = dataclasses.replace(config, engine=ENGINE_EVENT)
    compiled_config = dataclasses.replace(config, engine=ENGINE_COMPILED)
    # The shrinker drops this axis to tell apart an interpreter bug
    # (still fails) from a codegen bug (stops failing).
    run_compiled = case.get("compiled", True)

    if case.get("text_roundtrip"):
        # The round-tripped traces must precompile to the same columns as
        # the originals: parse(format(t)) feeding the replay kernel is
        # exactly how a saved trace re-enters a simulation, so a columns
        # mismatch would silently change every replayed request.
        plain_traces, _ = materialize({**case, "text_roundtrip": False})
        for plain, tripped in zip(plain_traces, traces):
            if plain.columns() != tripped.columns():
                return (
                    f"trace {plain.name!r}: text round-trip compiles to different "
                    "columns than the original entries"
                )

    key_tick = point_key(traces, tick_config)
    key_event = point_key(traces, event_config)
    if key_tick != key_event:
        return "cache key differs between engines (engine leaked into the fingerprint)"
    if key_tick != point_key(traces, compiled_config):
        return "cache key differs under the compiled engine (engine leaked into the fingerprint)"
    if key_tick != point_key(traces, tick_config):
        return "cache key is not stable across recomputation"

    tick = dataclasses.asdict(System(list(traces), tick_config).run())
    event = dataclasses.asdict(System(list(traces), event_config).run())
    for field_name, tick_value in tick.items():
        if event[field_name] != tick_value:
            return f"engines diverge in {field_name!r}"
    if event != tick:
        return "engines diverge"
    if run_compiled:
        compiled = dataclasses.asdict(System(list(traces), compiled_config).run())
        for field_name, tick_value in tick.items():
            if compiled[field_name] != tick_value:
                return f"compiled engine diverges from tick in {field_name!r}"
        if compiled != tick:
            return "compiled engine diverges from tick"

    fraction = case.get("checkpoint_fraction")
    if fraction is not None:
        # Checkpoint axis: pause each engine at the case's random cycle,
        # snapshot, restore, finish — must be bit-identical to the
        # straight run, and the snapshot digest must survive a restore.
        stop_at = max(1, int(tick["total_cycles"] * fraction))
        engine_axes = [(ENGINE_TICK, tick_config), (ENGINE_EVENT, event_config)]
        if run_compiled:
            engine_axes.append((ENGINE_COMPILED, compiled_config))
        for engine_name, engine_config in engine_axes:
            paused = System(list(traces), engine_config)
            paused.advance(stop_at=stop_at)
            if checkpoint_dir is not None:
                ckpt_store = CheckpointStore(checkpoint_dir)
                ckpt_store.put(traces, engine_config, paused)
                resumed = ckpt_store.resume(traces, engine_config)
                if resumed is None:
                    return (
                        f"{engine_name}: checkpoint at cycle {stop_at} missed "
                        "its own store on resume"
                    )
            else:
                data = checkpoint.snapshot(paused)
                resumed = checkpoint.restore(data)
                if checkpoint.content_digest(checkpoint.snapshot(resumed)) != (
                    checkpoint.content_digest(data)
                ):
                    return (
                        f"{engine_name}: snapshot digest changes across a "
                        f"restore at cycle {stop_at}"
                    )
            while not resumed.advance():
                pass
            if dataclasses.asdict(resumed.finalize()) != tick:
                return (
                    f"{engine_name}: checkpoint/restore at cycle {stop_at} "
                    "diverges from the uninterrupted run"
                )

        if run_compiled:
            # Cross-engine resumability: a snapshot taken under the
            # compiled engine must finish bit-identically under the
            # reference engine (checkpoints are engine-agnostic).
            paused = System(list(traces), compiled_config)
            paused.advance(stop_at=stop_at)
            data = checkpoint.snapshot(paused)
            resumed = checkpoint.restore(data, traces=list(traces), config=tick_config)
            while not resumed.advance():
                pass
            if dataclasses.asdict(resumed.finalize()) != tick:
                return (
                    f"snapshot under compiled at cycle {stop_at}, resumed "
                    "under tick, diverges from the uninterrupted run"
                )

    if store is not None:
        # Round-trip through the persistent store: a cached result must
        # deserialise bit-identically, otherwise the engine-agnostic
        # cache would paper over divergence.
        from repro.orchestration.cache import result_from_dict, result_to_dict

        rebuilt = dataclasses.asdict(
            result_from_dict(result_to_dict(System(list(traces), event_config).run()))
        )
        if rebuilt != tick:
            return "result does not survive a cache round-trip bit-identically"
    return None


# ----------------------------------------------------------------- shrinking


def _shrink_candidates(case: dict):
    """Yield progressively simpler variants of ``case`` (one change each)."""
    if len(case["slots"]) > 1:
        for drop in range(len(case["slots"])):
            slimmer = dict(case)
            slimmer["slots"] = [s for i, s in enumerate(case["slots"]) if i != drop]
            yield slimmer
    if case["instructions"] > 300:
        yield {**case, "instructions": max(300, case["instructions"] // 2)}
    if case.get("text_roundtrip"):
        yield {**case, "text_roundtrip": False}
    if case.get("compiled", True):
        # Dropping the compiled axis tells apart an interpreter bug
        # (still fails) from a codegen bug (stops failing).
        yield {**case, "compiled": False}
    if case.get("checkpoint_fraction") is not None:
        # Dropping the axis tells apart an engine bug (still fails) from
        # a checkpoint bug (stops failing); then try the extremes.
        yield {**case, "checkpoint_fraction": None}
        for pinned in (0.05, 0.5):
            if case["checkpoint_fraction"] != pinned:
                yield {**case, "checkpoint_fraction": pinned}
    defaults = {
        "design": "rng-oblivious",
        "scheduler": "fr-fcfs",
        "predictor": "none",
        "priority_mode": "equal",
        "channels": 1,
        "banks_per_rank": 8,
        "buffer_entries": 0,
        "low_utilization_threshold": 0,
        "read_queue_capacity": 32,
        "write_queue_capacity": 32,
        "write_drain_high": 16,
        "issue_lookahead": 8,
        "backend_latency": 10,
        "rng_mode_switch_penalty": 12,
        "issue_width": 3,
        "window_size": 128,
        "clock_ratio": 5,
        "max_cycles": 5_000_000,
    }
    for field_name, default in defaults.items():
        if case[field_name] != default:
            yield {**case, field_name: default}


def shrink(case: dict, failure: str) -> dict:
    """Greedily minimise ``case`` while it still reproduces a failure."""
    evaluations = 0
    minimal = case
    progress = True
    while progress and evaluations < MAX_SHRINK_EVALUATIONS:
        progress = False
        for candidate in _shrink_candidates(minimal):
            evaluations += 1
            if evaluations >= MAX_SHRINK_EVALUATIONS:
                break
            try:
                still_failing = check_case(candidate) is not None
            except Exception:
                # A shrink step that crashes outright is its own (even
                # better) reproducer.
                still_failing = True
            if still_failing:
                minimal = candidate
                progress = True
                break
    return minimal


# ----------------------------------------------------------------- the test


def test_fuzz_tick_event_identity(tmp_path):
    """Hundreds of random systems: tick ≡ event ≡ compiled, cache keys
    hold, and checkpoint/restore at a random cycle is invisible in the
    results."""
    import shutil

    rng = random.Random(MASTER_SEED)
    store = ResultCache(tmp_path / "fuzz-cache")
    for index in range(NUM_CASES):
        case = build_case(rng, index)
        # Each case that exercises the on-disk checkpoint store gets its
        # own directory, removed afterwards: a stale snapshot leaking
        # into the next case's resume would mask (or fake) divergence.
        checkpoint_dir = tmp_path / "ckpt" / f"case-{index}" if index % 10 == 0 else None
        try:
            failure = check_case(
                case,
                store=store if index % 20 == 0 else None,
                checkpoint_dir=checkpoint_dir,
            )
        finally:
            if checkpoint_dir is not None:
                shutil.rmtree(checkpoint_dir, ignore_errors=True)
        if failure is not None:
            minimal = shrink(case, failure)
            minimal_failure = None
            try:
                minimal_failure = check_case(minimal)
            except Exception as error:  # pragma: no cover - diagnostics only
                minimal_failure = f"crash: {error!r}"
            checkpoint_cycle = (
                "(no checkpoint)"
                if minimal.get("checkpoint_fraction") is None
                else f"checkpoint_fraction={minimal['checkpoint_fraction']}"
            )
            pytest.fail(
                f"fuzz case {index} (REPRO_FUZZ_SEED={MASTER_SEED}) failed: {failure}\n"
                f"minimal reproducing case ({minimal_failure}, {checkpoint_cycle}):\n"
                f"{minimal!r}\n"
                "replay with tests.test_engine_fuzz.run_case(case, 'tick'/'event')"
            )


def test_fuzz_generator_is_deterministic():
    """Same master seed ⇒ same cases (failures must be reproducible)."""
    first = [build_case(random.Random(MASTER_SEED), i) for i in range(5)]
    second = [build_case(random.Random(MASTER_SEED), i) for i in range(5)]
    assert first == second


def test_fuzz_case_runs_all_engines():
    """The replay helper exercises a full case end to end, three ways."""
    case = build_case(random.Random(1234), 0)
    tick = run_case(case, ENGINE_TICK)
    event = run_case(case, ENGINE_EVENT)
    compiled = run_case(case, ENGINE_COMPILED)
    assert dataclasses.asdict(tick) == dataclasses.asdict(event)
    assert dataclasses.asdict(tick) == dataclasses.asdict(compiled)
