"""Tests for trace records, including save/load round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import Trace, TraceEntry, merge_traces


class TestTraceEntry:
    def test_instruction_count(self):
        assert TraceEntry(bubbles=5).instruction_count == 5
        assert TraceEntry(bubbles=5, address=64).instruction_count == 6
        assert TraceEntry(bubbles=5, address=64, rng_bits=64).instruction_count == 7

    def test_flags(self):
        assert TraceEntry(address=0).has_memory_read
        assert not TraceEntry(bubbles=1).has_memory_read
        assert TraceEntry(rng_bits=64).has_rng_request

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceEntry(bubbles=-1)
        with pytest.raises(ValueError):
            TraceEntry(rng_bits=-1)
        with pytest.raises(ValueError):
            TraceEntry(address=-5)


class TestTrace:
    def test_requires_entries(self):
        with pytest.raises(ValueError):
            Trace([])

    def test_aggregate_counts(self):
        trace = Trace(
            [
                TraceEntry(bubbles=10, address=64, write_address=128),
                TraceEntry(bubbles=5),
                TraceEntry(bubbles=0, rng_bits=64),
            ],
            name="t",
        )
        assert trace.total_instructions == 17
        assert trace.memory_reads == 1
        assert trace.memory_writes == 1
        assert trace.rng_requests == 1

    def test_mpki(self):
        trace = Trace([TraceEntry(bubbles=999, address=0)])
        assert trace.mpki == pytest.approx(1.0)

    def test_indexing_and_iteration(self):
        entries = [TraceEntry(bubbles=i) for i in range(1, 4)]
        trace = Trace(entries)
        assert trace[1] is entries[1]
        assert list(trace) == entries
        assert len(trace) == 3

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace(
            [
                TraceEntry(bubbles=3, address=640, write_address=128),
                TraceEntry(bubbles=0, rng_bits=64),
                TraceEntry(bubbles=7),
            ],
            name="roundtrip",
        )
        path = tmp_path / "trace.txt"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "trace"
        assert loaded.entries == trace.entries

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 X 12\n")
        with pytest.raises(ValueError):
            Trace.load(path)

    def test_merge_traces(self):
        a = Trace([TraceEntry(bubbles=1)], name="a")
        b = Trace([TraceEntry(bubbles=2)], name="b")
        merged = merge_traces([a, b], name="ab")
        assert merged.total_instructions == 3
        assert merged.name == "ab"


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**20)),
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**20)),
            st.sampled_from([0, 64]),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_save_load_roundtrip_property(tmp_path_factory, raw_entries):
    entries = [
        TraceEntry(bubbles=b, address=a, write_address=w, rng_bits=g)
        for b, a, w, g in raw_entries
    ]
    trace = Trace(entries, name="prop")
    path = tmp_path_factory.mktemp("traces") / "prop.txt"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.entries == entries


ADVERSARIAL_ENTRIES = [
    TraceEntry(bubbles=0, address=64),                       # zero-bubble read
    TraceEntry(bubbles=0, write_address=128),                # write-only
    TraceEntry(bubbles=0, rng_bits=64),                      # rng-only
    TraceEntry(bubbles=0, address=0, write_address=0),       # address zero
    TraceEntry(bubbles=7, address=192, write_address=256, rng_bits=8),
    TraceEntry(bubbles=1_000_000),                           # bubble flood
]


class TestTraceColumns:
    def test_columns_mirror_entries(self):
        trace = Trace(ADVERSARIAL_ENTRIES, name="adv")
        columns = trace.columns()
        assert len(columns) == len(trace.entries)
        for index, entry in enumerate(trace.entries):
            assert columns.bubbles[index] == entry.bubbles
            expected_read = -1 if entry.address is None else entry.address
            assert columns.read_addresses[index] == expected_read
            expected_write = -1 if entry.write_address is None else entry.write_address
            assert columns.write_addresses[index] == expected_write
            assert columns.rng_bits[index] == entry.rng_bits

    def test_columns_are_cached_per_trace(self):
        trace = Trace(ADVERSARIAL_ENTRIES)
        assert trace.columns() is trace.columns()

    def test_columns_recompile_when_entries_grow(self):
        trace = Trace([TraceEntry(bubbles=1)])
        first = trace.columns()
        trace.entries.append(TraceEntry(bubbles=2, address=64))
        recompiled = trace.columns()
        assert recompiled is not first
        assert len(recompiled) == 2
        assert recompiled.read_addresses[1] == 64

    def test_columns_recompile_on_same_length_replacement(self):
        trace = Trace([TraceEntry(bubbles=1), TraceEntry(bubbles=2)])
        first = trace.columns()
        trace.entries[0] = TraceEntry(bubbles=9, address=128)
        recompiled = trace.columns()
        assert recompiled is not first
        assert recompiled.bubbles[0] == 9
        assert recompiled.read_addresses[0] == 128

    def test_text_roundtrip_compiles_identically(self):
        trace = Trace(ADVERSARIAL_ENTRIES, name="adv", metadata={"seed": 3})
        rebuilt = Trace.parse(trace.format(), name=trace.name, metadata=trace.metadata)
        assert rebuilt.entries == trace.entries
        assert rebuilt.name == trace.name
        assert rebuilt.metadata == trace.metadata
        assert rebuilt.columns() == trace.columns()

    def test_parse_reports_source_location(self):
        with pytest.raises(ValueError, match=r"<string>:2"):
            Trace.parse("3\nnot a line\n")
