"""Tests for the causal event-trace layer (the observability PR).

Covers the event bus's ordering guarantees (total ``seq`` order to every
subscriber, even under concurrent emits), the persisted journals and
their Chrome trace-event export, the streaming ``watch`` protocol
(subscribe/unsubscribe, delta ordering over the wire, version tolerance
in both directions), the service journal replay that makes job history
survive a daemon restart, per-point provenance in sweep stats and run
manifests, the engine phase profile — and the acceptance bar throughout:
tracing on, off or absent never changes a single result bit.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import telemetry
from repro.distributed import SweepService, WatchClient
from repro.distributed.client import ServiceError
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    encode_message,
    hello_message,
    peer_features,
    read_message,
)
from repro.orchestration import (
    InMemoryResultStore,
    ResultCache,
    SweepRequest,
    canonical_data,
    sweep_experiments,
)
from repro.telemetry.events import EventBus, isolated_bus
from repro.telemetry.status import _format_eta, format_event
from repro.telemetry.trace import (
    TraceJournal,
    export_chrome_trace,
    list_journals,
    profile_counters,
    read_journal,
    traces_dir,
    validate_chrome_trace,
)

FIG5 = SweepRequest(experiments=("fig5",), instructions=1500)

#: Service knobs matching tests/test_service.py's FAST profile.
FAST = dict(lease_timeout=0.4, straggler_timeout=0.3, retry_seconds=0.05)


# ----------------------------------------------------------------- event bus


class TestEventBus:
    def test_seq_is_strictly_increasing_and_stamped(self):
        bus = EventBus()
        events = [bus.emit("point.start", point=f"k{i}") for i in range(5)]
        assert [event["seq"] for event in events] == [1, 2, 3, 4, 5]
        assert all(event["kind"] == "point.start" for event in events)
        assert all(isinstance(event["ts"], float) for event in events)

    def test_every_subscriber_sees_the_same_total_order(self):
        # The delta-ordering guarantee: concurrent emitters, several
        # subscribers, one identical seq-ordered stream each.
        bus = EventBus()
        queues = [bus.subscribe() for _ in range(3)]
        threads = [
            threading.Thread(
                target=lambda w=worker: [
                    bus.emit("point.commit", point=f"w{w}-{i}") for i in range(50)
                ]
            )
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        streams = [
            [queue.get_nowait()["seq"] for _ in range(200)] for queue in queues
        ]
        assert streams[0] == sorted(streams[0]) == list(range(1, 201))
        assert streams[1] == streams[0] and streams[2] == streams[0]

    def test_from_seq_replays_buffered_events_in_order(self):
        bus = EventBus()
        for i in range(10):
            bus.emit("lease.grant", point=f"k{i}")
        queue = bus.subscribe(from_seq=7)
        replayed = [queue.get_nowait()["seq"] for _ in range(3)]
        assert replayed == [8, 9, 10]
        bus.emit("lease.grant", point="live")
        assert queue.get_nowait()["seq"] == 11

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        queue = bus.subscribe()
        bus.emit("a")
        bus.unsubscribe(queue)
        bus.emit("b")
        assert queue.get_nowait()["kind"] == "a"
        assert queue.empty()

    def test_full_subscriber_queue_drops_never_blocks(self):
        bus = EventBus()
        queue = bus.subscribe(maxsize=2)
        for i in range(5):
            bus.emit("e", n=i)
        assert queue.qsize() == 2  # oldest two kept, rest dropped
        assert bus.seq == 5  # the emitter never noticed

    def test_disabled_bus_emits_nothing(self):
        bus = EventBus(enabled=False)
        queue = bus.subscribe()
        assert bus.emit("point.start") is None
        assert bus.seq == 0 and queue.empty()

    def test_sinks_receive_events_and_survive_broken_sink(self):
        bus = EventBus()
        seen = []
        bus.add_sink(seen.append)
        bus.add_sink(lambda event: 1 / 0)  # must never take down emit
        bus.emit("point.done", point="k")
        assert [event["kind"] for event in seen] == ["point.done"]
        bus.remove_sink(seen.append)
        bus.emit("point.done")
        assert len(seen) == 1

    def test_isolated_bus_swaps_and_restores_process_bus(self):
        before = telemetry.bus()
        with isolated_bus() as fresh:
            assert telemetry.bus() is fresh
            telemetry.emit("x")
            assert fresh.seq == 1
        assert telemetry.bus() is before


# ----------------------------------------------------------------- rendering


class TestRendering:
    def test_format_eta_clamps_nonsense_to_dashes(self):
        # The PR 7 status bug: cache-warmed figures report inf/negative
        # ETAs; render `--`, never "-3s" or a crash.
        for bad in (None, float("inf"), float("-inf"), float("nan"), -1, -0.5, "soon"):
            assert _format_eta(bad) == "--"

    def test_format_eta_formats_sane_values(self):
        assert _format_eta(42) == "42s"
        assert _format_eta(90) == "1m30s"
        assert _format_eta(3700) == "1h01m"

    def test_format_event_renders_kind_and_causal_ids(self):
        line = format_event(
            {
                "seq": 7,
                "ts": 1700000000.0,
                "kind": "point.commit",
                "point": "a" * 64,
                "worker": "w1",
                "job": "job-0001",
            }
        )
        assert "point.commit" in line
        assert f"point={'a' * 12}" in line  # digest shortened
        assert "worker=w1" in line and "job=job-0001" in line

    def test_format_event_tolerates_garbage(self):
        assert "?" in format_event({})
        assert "--:--:--" in format_event({"kind": "x", "ts": "yesterday"})


# ------------------------------------------------------------------ journals


class TestTraceJournal:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "traces" / "run.jsonl"
        journal = TraceJournal(path)
        journal.write({"seq": 1, "kind": "run.start", "run": "r1"})
        journal.write({"seq": 2, "kind": "run.end", "run": "r1"})
        journal.close()
        events = read_journal(path)
        assert [event["kind"] for event in events] == ["run.start", "run.end"]

    def test_lazy_open_creates_no_file_without_events(self, tmp_path):
        path = tmp_path / "traces" / "idle.jsonl"
        journal = TraceJournal(path)
        journal.close()
        assert not path.exists()

    def test_torn_and_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"seq":1,"kind":"a"}\n'
            "not json at all\n"
            '{"no_kind":true}\n'
            '{"seq":2,"kind":"b"}\n'
            '{"seq":3,"kind":"c"'  # killed mid-write
        )
        assert [event["kind"] for event in read_journal(path)] == ["a", "b"]

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_unwritable_journal_goes_dead_silently(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        journal = TraceJournal(blocker / "sub" / "run.jsonl")  # parent is a file
        journal.write({"seq": 1, "kind": "a"})  # must not raise
        journal.write({"seq": 2, "kind": "b"})
        journal.close()

    def test_list_journals_sorted(self, tmp_path):
        root = traces_dir(tmp_path)
        root.mkdir(parents=True)
        for name in ("b.jsonl", "a.jsonl"):
            (root / name).write_text("")
        assert [path.name for path in list_journals(tmp_path)] == ["a.jsonl", "b.jsonl"]


class TestChromeExport:
    def _journal(self):
        return [
            {"seq": 1, "ts": 1.0, "kind": "run.start", "run": "r1"},
            {"seq": 2, "ts": 1.1, "kind": "phase.start", "phase": "execute", "run": "r1"},
            {"seq": 3, "ts": 1.2, "kind": "lease.grant", "point": "k1", "worker": "w1"},
            {"seq": 4, "ts": 1.3, "kind": "point.start", "point": "k1", "worker": "w1"},
            {"seq": 5, "ts": 1.6, "kind": "point.done", "point": "k1", "worker": "w1"},
            {"seq": 6, "ts": 1.7, "kind": "point.commit", "point": "k1", "worker": "w1"},
            {"seq": 7, "ts": 1.8, "kind": "phase.end", "phase": "execute", "run": "r1"},
            {"seq": 8, "ts": 1.9, "kind": "point.start", "point": "k2", "worker": "w1"},
            # k2's end was never journaled (daemon killed): unpaired.
        ]

    def test_export_pairs_spans_and_validates(self):
        document = export_chrome_trace(self._journal())
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        slices = [event for event in events if event["ph"] == "X"]
        # point.start/done and lease.grant/commit and the phase pair.
        assert len(slices) == 3
        point_slice = next(s for s in slices if s["args"].get("kind") == "point.start")
        assert point_slice["dur"] == pytest.approx(0.3e6)  # 1.3s → 1.6s in µs

    def test_worker_and_run_become_processes(self):
        document = export_chrome_trace(self._journal())
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert "worker:w1" in names and "run" in names

    def test_unpaired_start_becomes_instant_not_dropped(self):
        document = export_chrome_trace(self._journal())
        instants = [e["name"] for e in document["traceEvents"] if e["ph"] == "i"]
        assert any("unfinished" in name for name in instants)

    def test_export_of_empty_journal_is_valid(self):
        document = export_chrome_trace([])
        assert validate_chrome_trace(document) == []
        assert document["traceEvents"] == []

    def test_validate_flags_malformed_documents(self):
        assert validate_chrome_trace([]) == ["payload is not an object"]
        assert validate_chrome_trace({}) == ["traceEvents is not a list"]
        problems = validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1.0}]}
        )
        assert any("dur" in problem for problem in problems)
        assert any("name" in problem for problem in problems)


# ------------------------------------------------------------- watch protocol


class WatchWire:
    """Raw socket driver for the watch wire protocol (test-side)."""

    def __init__(self, address, role="observer", features=None):
        self.connection = socket.create_connection(tuple(address), timeout=10.0)
        self.stream = self.connection.makefile("rb")
        hello = hello_message(f"wire-{role}", pid=1, role=role)
        if features is not None:  # simulate older/newer clients
            hello["features"] = features
        self.send(hello)
        self.welcome = self.receive()

    def send(self, payload):
        self.connection.sendall(encode_message(payload))

    def receive(self, timeout=10.0):
        self.connection.settimeout(timeout)
        return read_message(self.stream)

    def close(self):
        try:
            self.connection.close()
        except OSError:
            pass


@pytest.fixture
def service():
    store = InMemoryResultStore()
    svc = SweepService(store, **FAST)
    address = svc.start()
    try:
        yield svc, address, store
    finally:
        svc.stop()


class TestWatchProtocol:
    def test_welcome_advertises_watch(self, service):
        _, address, _ = service
        wire = WatchWire(address)
        assert "watch" in peer_features(wire.welcome)
        wire.close()

    def test_subscribe_acks_with_seq_and_status_snapshot(self, service):
        _, address, _ = service
        wire = WatchWire(address)
        wire.send({"type": "watch"})
        ack = wire.receive()
        assert ack["type"] == "watching"
        assert isinstance(ack["seq"], int)
        assert ack["status"]["type"] == "status"
        wire.close()

    def test_events_stream_in_seq_order_under_concurrent_emits(self, service):
        svc, address, _ = service
        wire = WatchWire(address)
        wire.send({"type": "watch"})
        assert wire.receive()["type"] == "watching"
        threads = [
            threading.Thread(
                target=lambda w=worker: [
                    svc.events.emit("point.commit", point=f"w{w}-{i}", worker=f"w{w}")
                    for i in range(25)
                ]
            )
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = []
        for _ in range(100):
            frame = wire.receive()
            assert frame["type"] == "event"
            seqs.append(frame["event"]["seq"])
        assert seqs == sorted(seqs) and len(set(seqs)) == 100
        wire.close()

    def test_from_seq_catch_up_replays_missed_events(self, service):
        svc, address, _ = service
        svc.events.emit("point.commit", point="early-1")
        svc.events.emit("point.commit", point="early-2")
        wire = WatchWire(address)
        wire.send({"type": "watch", "from_seq": 1})
        assert wire.receive()["type"] == "watching"
        frame = wire.receive()
        assert frame["event"]["point"] == "early-2"
        wire.close()

    def test_unwatch_stops_delivery_and_connection_keeps_serving(self, service):
        svc, address, _ = service
        wire = WatchWire(address)
        wire.send({"type": "watch"})
        assert wire.receive()["type"] == "watching"
        wire.send({"type": "unwatch"})
        # Drain until the unwatched ack (event frames may interleave).
        while True:
            frame = wire.receive()
            if frame["type"] == "unwatched":
                break
        svc.events.emit("point.commit", point="after-unwatch")
        # The connection still answers plain requests, with no stray
        # event frames in between.
        wire.send({"type": "status", "protocol": PROTOCOL_VERSION})
        reply = wire.receive()
        assert reply["type"] == "status"
        wire.close()

    def test_watch_message_with_unknown_fields_still_subscribes(self, service):
        # Forward tolerance: a newer client may send fields this daemon
        # does not know.
        _, address, _ = service
        wire = WatchWire(address)
        wire.send({"type": "watch", "compression": "zstd", "batch_hint": 64})
        assert wire.receive()["type"] == "watching"
        wire.close()

    def test_watch_client_streams_and_seeds_status(self, service):
        svc, address, _ = service
        with WatchClient(address) as watcher:
            assert watcher.supports_watch
            assert watcher.status is not None and watcher.status["type"] == "status"
            svc.events.emit("job.state", job="job-0001", state="running")
            event = next(watcher.events())
            assert event["kind"] == "job.state" and event["job"] == "job-0001"
            assert watcher.seq == event["seq"]

    def test_watch_client_from_seq_zero_replays_full_history(self, service):
        # An explicit 0 must reach the wire (0 is falsy — a truthiness
        # guard would silently degrade it to live-only).
        svc, address, _ = service
        svc.events.emit("point.commit", point="history-1")
        svc.events.emit("point.commit", point="history-2")
        with WatchClient(address, from_seq=0) as watcher:
            stream = watcher.events()
            assert next(stream)["point"] == "history-1"
            assert next(stream)["point"] == "history-2"

    def test_watch_client_default_is_live_only(self, service):
        svc, address, _ = service
        svc.events.emit("point.commit", point="before-subscribe")
        with WatchClient(address) as watcher:
            svc.events.emit("point.commit", point="after-subscribe")
            assert next(watcher.events())["point"] == "after-subscribe"

    def test_watch_client_degrades_against_pre_watch_peer(self):
        # Backward tolerance: a peer whose welcome lacks the "watch"
        # feature leaves the client constructed but inert — the CLI
        # falls back to status polling instead of erroring.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        address = listener.getsockname()

        def old_daemon():
            connection, _ = listener.accept()
            stream = connection.makefile("rb")
            read_message(stream)  # the hello
            connection.sendall(
                encode_message(
                    {
                        "type": "welcome",
                        "protocol": PROTOCOL_VERSION,
                        "features": ["metrics", "status"],  # pre-watch era
                    }
                )
            )
            time.sleep(0.2)
            connection.close()

        thread = threading.Thread(target=old_daemon, daemon=True)
        thread.start()
        watcher = WatchClient(address)
        try:
            assert not watcher.supports_watch
            assert list(watcher.events()) == []
        finally:
            watcher.close()
            listener.close()
            thread.join(timeout=5)

    def test_watch_client_raises_on_refused_handshake(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        address = listener.getsockname()

        def rude_daemon():
            connection, _ = listener.accept()
            connection.close()

        thread = threading.Thread(target=rude_daemon, daemon=True)
        thread.start()
        with pytest.raises((ServiceError, OSError)):
            WatchClient(address)
        listener.close()
        thread.join(timeout=5)


# -------------------------------------------------------------- journal replay


class TestServiceJournalReplay:
    def test_job_table_survives_daemon_restart(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        first = SweepService(store, **FAST)
        address = first.start()
        try:
            wire = WatchWire(address, role="client")
            wire.send({"type": "submit", "request": FIG5.to_wire(), "tenant": "alice"})
            job_id = wire.receive()["job"]
            # No workers: cancel to reach a terminal state deterministically.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                wire.send({"type": "cancel", "job": job_id})
                reply = wire.receive()
                if reply.get("state") == "cancelled":
                    break
                time.sleep(0.05)
            wire.send({"type": "poll", "job": job_id})
            before = wire.receive()
            assert before["state"] == "cancelled"
            wire.close()
        finally:
            first.stop()

        second = SweepService(ResultCache(tmp_path / "cache"), **FAST)
        address = second.start()
        try:
            wire = WatchWire(address, role="client")
            wire.send({"type": "poll", "job": job_id})
            after = wire.receive()
            # Identical record: same id, state, tenant, shape.
            for field in ("job", "state", "tenant", "experiments", "points",
                          "executed", "reused", "priority"):
                assert after[field] == before[field], field
            # And the id sequence resumes past the restored job.
            wire.send({"type": "submit", "request": FIG5.to_wire(), "tenant": "bob"})
            assert wire.receive()["job"] != job_id
            wire.close()
        finally:
            second.stop()

    def test_mid_flight_job_restores_as_failed(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        first = SweepService(store, **FAST)
        address = first.start()
        try:
            wire = WatchWire(address, role="client")
            wire.send({"type": "submit", "request": FIG5.to_wire(), "tenant": "alice"})
            job_id = wire.receive()["job"]
            # Wait until planned (running), then kill the daemon under it.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                wire.send({"type": "poll", "job": job_id})
                if wire.receive()["state"] == "running":
                    break
                time.sleep(0.05)
            wire.close()
        finally:
            first.stop()

        second = SweepService(ResultCache(tmp_path / "cache"), **FAST)
        address = second.start()
        try:
            wire = WatchWire(address, role="client")
            wire.send({"type": "poll", "job": job_id})
            restored = wire.receive()
            assert restored["state"] == "failed"
            assert "restarted" in restored["error"]
            wire.close()
        finally:
            second.stop()

    def test_in_memory_service_keeps_no_journal(self, tmp_path):
        svc = SweepService(InMemoryResultStore(), **FAST)
        svc.start()
        svc.stop()
        assert not (tmp_path / "traces").exists()


# ----------------------------------------------------------------- provenance


class TestSweepProvenance:
    def test_cold_then_warm_runs_join_on_run_ids(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        cold = sweep_experiments(FIG5, store=store)
        assert cold.stats.run_id
        assert len(cold.stats.points) == cold.stats.planned > 0
        assert all(
            point["state"] == "simulated" and point["run"] == cold.stats.run_id
            for point in cold.stats.points.values()
        )

        warm = sweep_experiments(FIG5, store=ResultCache(tmp_path / "cache"))
        assert warm.stats.run_id != cold.stats.run_id
        assert all(
            point["state"] == "replayed" and point["run"] == cold.stats.run_id
            for point in warm.stats.points.values()
        )
        # Results bit-identical, of course.
        assert canonical_data(dict(cold.data)) == canonical_data(dict(warm.data))

    def test_journal_written_per_run_and_replay_events_emitted(self, tmp_path):
        store = ResultCache(tmp_path / "cache")
        cold = sweep_experiments(FIG5, store=store)
        warm = sweep_experiments(FIG5, store=ResultCache(tmp_path / "cache"))
        journals = {path.stem: read_journal(path) for path in list_journals(tmp_path / "cache")}
        assert set(journals) == {cold.stats.run_id, warm.stats.run_id}
        cold_kinds = [event["kind"] for event in journals[cold.stats.run_id]]
        assert cold_kinds[0] == "run.start" and cold_kinds[-1] == "run.end"
        assert "point.start" in cold_kinds and "point.done" in cold_kinds
        warm_kinds = [event["kind"] for event in journals[warm.stats.run_id]]
        assert warm_kinds.count("point.replay") == warm.stats.reused
        # Every journal exports to a valid Chrome trace.
        for events in journals.values():
            assert validate_chrome_trace(export_chrome_trace(events)) == []

    def test_disabled_bus_writes_no_journal_same_results(self, tmp_path):
        with isolated_bus(enabled=False):
            result = sweep_experiments(FIG5, store=ResultCache(tmp_path / "cache"))
        assert not list_journals(tmp_path / "cache")
        baseline = sweep_experiments(FIG5, store=InMemoryResultStore())
        assert canonical_data(dict(result.data)) == canonical_data(dict(baseline.data))
        # Provenance still recorded: it is bookkeeping, not tracing.
        assert result.stats.points and result.stats.run_id

    def test_in_memory_store_traces_without_journal(self):
        with isolated_bus() as bus:
            queue = bus.subscribe()
            sweep_experiments(FIG5, store=InMemoryResultStore())
            kinds = []
            while not queue.empty():
                kinds.append(queue.get_nowait()["kind"])
        assert "run.start" in kinds and "run.end" in kinds


# -------------------------------------------------------------- engine profile


class TestEngineProfile:
    def test_profiled_run_records_histograms_and_identical_results(self):
        with telemetry.isolated():
            baseline = sweep_experiments(FIG5, store=InMemoryResultStore())
        with telemetry.isolated(), telemetry.profiled():
            profiled = sweep_experiments(FIG5, store=InMemoryResultStore())
            counters = telemetry.snapshot()["counters"]
        profile = profile_counters(counters)
        assert profile, "profiled run produced no engine.profile.* counters"
        assert any(name.startswith("serve_window_len.") for name in profile) or any(
            name.startswith("skip_len.") for name in profile
        )
        assert canonical_data(dict(baseline.data)) == canonical_data(dict(profiled.data))

    def test_unprofiled_run_records_no_profile_counters(self):
        with telemetry.isolated():
            sweep_experiments(FIG5, store=InMemoryResultStore())
            counters = telemetry.snapshot()["counters"]
        assert not profile_counters(counters)


# ------------------------------------------------------------------- fairness


class TestSchedulerObservers:
    def test_blacklist_and_clear_fire_hooks(self):
        from tests.test_service import make_scheduler

        scheduler, clock = make_scheduler(service_quantum=2, clearing_interval=5.0)
        blacklisted, cleared = [], []
        scheduler.on_blacklist = blacklisted.append
        scheduler.on_clear = cleared.extend
        scheduler.add_job("hog", priority="batch")
        for _ in range(2):
            scheduler.select({"hog": 10})
            scheduler.record_service("hog")
        assert blacklisted == ["hog"]
        clock.advance(6.0)
        scheduler.maybe_clear()
        assert cleared == ["hog"]

    def test_hooks_default_to_none_and_stay_silent(self):
        from tests.test_service import make_scheduler

        scheduler, clock = make_scheduler(service_quantum=1, clearing_interval=5.0)
        scheduler.add_job("solo")
        scheduler.select({"solo": 1})
        scheduler.record_service("solo")
        clock.advance(6.0)
        scheduler.maybe_clear()  # must not raise with hooks unset
