"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization, DRAMTiming
from repro.sim.runner import AloneRunCache
from repro.workloads.spec import ApplicationSpec, RNGBenchmarkSpec, WorkloadMix


@pytest.fixture
def timing() -> DRAMTiming:
    return DRAMTiming()


@pytest.fixture
def organization() -> DRAMOrganization:
    return DRAMOrganization()


@pytest.fixture
def mapping(organization) -> AddressMapping:
    return AddressMapping(organization)


@pytest.fixture
def medium_app() -> ApplicationSpec:
    return ApplicationSpec("test-medium", mpki=6.0, row_locality=0.5, write_fraction=0.25)


@pytest.fixture
def heavy_app() -> ApplicationSpec:
    return ApplicationSpec("test-heavy", mpki=20.0, row_locality=0.6, write_fraction=0.3)


@pytest.fixture
def light_app() -> ApplicationSpec:
    return ApplicationSpec("test-light", mpki=0.5, row_locality=0.4, write_fraction=0.2)


@pytest.fixture
def rng_benchmark() -> RNGBenchmarkSpec:
    return RNGBenchmarkSpec("test-rng", throughput_mbps=5120.0)


@pytest.fixture
def dual_core_mix(medium_app, rng_benchmark) -> WorkloadMix:
    return WorkloadMix(name="test-mix", slots=[medium_app, rng_benchmark])


@pytest.fixture
def alone_cache() -> AloneRunCache:
    return AloneRunCache()


@pytest.fixture
def checkpoint_store(tmp_path_factory):
    """A fresh :class:`CheckpointStore` in its own directory.

    Checkpoint directories are per-test (``tmp_path_factory`` mints a new
    basetemp subdirectory each time), so no warmup prefix written by one
    test — or one fuzz case — can ever satisfy a resume in another.
    """
    from repro.orchestration.cache import CheckpointStore

    store = CheckpointStore(tmp_path_factory.mktemp("checkpoints"))
    yield store
    store.clear()


@pytest.fixture(scope="session")
def session_cache() -> AloneRunCache:
    """A session-scoped alone-run cache shared by the slower integration tests."""
    return AloneRunCache()
