"""Tests for the application-facing TRNG interface."""

import pytest

from repro.core.interface import TRNGInterface
from repro.core.rng_buffer import RandomNumberBuffer
from repro.trng.drange import DRaNGe
from repro.trng.quality import all_tests_pass


@pytest.fixture
def interface():
    return TRNGInterface(DRaNGe(), buffer=RandomNumberBuffer(entries=16), keep_history=True)


class TestRandomAccess:
    def test_random_bits_count_and_values(self, interface):
        bits = interface.random_bits(256)
        assert len(bits) == 256
        assert set(bits.tolist()) <= {0, 1}

    def test_random_int_range(self, interface):
        for width in (1, 8, 64):
            value = interface.random_int(width)
            assert 0 <= value < (1 << width)

    def test_getrandom_bytes(self, interface):
        data = interface.getrandom(32)
        assert isinstance(data, bytes)
        assert len(data) == 32

    def test_random_uniform_in_unit_interval(self, interface):
        for _ in range(20):
            assert 0.0 <= interface.random_uniform() < 1.0

    def test_output_passes_quality_tests(self, interface):
        bits = interface.random_bits(20_000)
        assert all_tests_pass(bits)

    def test_invalid_arguments(self, interface):
        with pytest.raises(ValueError):
            interface.random_bits(0)
        with pytest.raises(ValueError):
            interface.getrandom(0)


class TestBufferBehaviour:
    def test_prefill_then_low_latency_serve(self, interface):
        interface.prefill_buffer()
        interface.random_bits(64)
        assert interface.stats.buffer_serves == 1
        assert interface.stats.history[0].latency_cycles == interface.buffer_serve_latency

    def test_empty_buffer_pays_demand_latency(self, interface):
        interface.random_bits(64)
        call = interface.stats.history[0]
        assert not call.served_from_buffer
        assert call.latency_cycles >= DRaNGe().demand_base_latency_cycles

    def test_served_bits_are_consumed(self, interface):
        interface.prefill_buffer(bits=64)
        interface.random_bits(64)
        interface.random_bits(64)
        assert interface.stats.buffer_serves == 1
        assert interface.buffer.available_bits == 0

    def test_buffer_serve_rate(self, interface):
        interface.prefill_buffer(bits=128)
        interface.random_bits(64)
        interface.random_bits(64)
        interface.random_bits(64)
        assert interface.stats.buffer_serve_rate == pytest.approx(2 / 3)

    def test_average_latency_reported(self, interface):
        interface.prefill_buffer()
        interface.random_bits(64)
        assert interface.stats.average_latency_cycles > 0

    def test_unique_numbers_security_property(self, interface):
        interface.prefill_buffer()
        values = {interface.random_int(64) for _ in range(16)}
        assert len(values) == 16
