"""Tests for the random number buffer, including invariant property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng_buffer import RandomNumberBuffer


class TestBasicOperation:
    def test_starts_empty(self):
        buffer = RandomNumberBuffer(entries=16)
        assert buffer.is_empty
        assert buffer.available_bits == 0
        assert buffer.capacity_bits == 1024

    def test_add_and_take(self):
        buffer = RandomNumberBuffer(entries=2)
        assert buffer.add_bits(64) == 64
        assert buffer.take(64)
        assert buffer.is_empty

    def test_take_fails_when_insufficient(self):
        buffer = RandomNumberBuffer(entries=1)
        buffer.add_bits(32)
        assert not buffer.take(64)
        assert buffer.available_bits == 32
        assert buffer.stats.misses == 1

    def test_overfill_is_dropped(self):
        buffer = RandomNumberBuffer(entries=1)
        stored = buffer.add_bits(100)
        assert stored == 64
        assert buffer.is_full
        assert buffer.stats.bits_dropped == 36

    def test_zero_capacity_buffer(self):
        buffer = RandomNumberBuffer(entries=0)
        assert buffer.capacity_bits == 0
        assert buffer.add_bits(8) == 0
        assert not buffer.take(8)
        assert buffer.occupancy == 0.0

    def test_served_bits_are_discarded(self):
        buffer = RandomNumberBuffer(entries=2)
        buffer.add_bits(128)
        assert buffer.take(64)
        assert buffer.available_bits == 64
        assert buffer.take(64)
        assert not buffer.take(64)

    def test_drain(self):
        buffer = RandomNumberBuffer(entries=2)
        buffer.add_bits(100)
        assert buffer.drain() == 100
        assert buffer.is_empty

    def test_serve_rate(self):
        buffer = RandomNumberBuffer(entries=1)
        buffer.add_bits(64)
        buffer.take(64)
        buffer.take(64)
        assert buffer.stats.serve_rate == pytest.approx(0.5)

    def test_occupancy(self):
        buffer = RandomNumberBuffer(entries=2)
        buffer.add_bits(64)
        assert buffer.occupancy == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomNumberBuffer(entries=-1)
        with pytest.raises(ValueError):
            RandomNumberBuffer(entries=1, bits_per_entry=0)
        buffer = RandomNumberBuffer(entries=1)
        with pytest.raises(ValueError):
            buffer.add_bits(-1)
        with pytest.raises(ValueError):
            buffer.take(0)
        with pytest.raises(ValueError):
            buffer.has(-1)


@settings(max_examples=200, deadline=None)
@given(
    entries=st.integers(min_value=0, max_value=32),
    operations=st.lists(
        st.tuples(st.sampled_from(["add", "take"]), st.integers(min_value=1, max_value=200)),
        max_size=60,
    ),
)
def test_buffer_invariants_property(entries, operations):
    """Occupancy stays within capacity and the bit ledger balances."""
    buffer = RandomNumberBuffer(entries=entries)
    for op, amount in operations:
        if op == "add":
            buffer.add_bits(amount)
        else:
            buffer.take(amount)
        assert 0 <= buffer.available_bits <= buffer.capacity_bits
    ledger = buffer.stats.bits_added - buffer.stats.bits_served
    assert ledger == buffer.available_bits


@settings(max_examples=100, deadline=None)
@given(amounts=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=40))
def test_take_never_succeeds_beyond_added(amounts):
    buffer = RandomNumberBuffer(entries=64)
    added = 0
    for amount in amounts:
        added += buffer.add_bits(amount)
    taken = 0
    while buffer.take(8):
        taken += 8
    assert taken <= added
