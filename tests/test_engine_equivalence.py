"""Bit-identity of the event (cycle-skipping) and tick simulation engines.

The event engine's whole contract is that skipped cycles are replayed in
closed form with no observable difference: for every design, scheduler,
predictor and topology, the :class:`~repro.sim.results.SimulationResult`
must equal the tick engine's field for field — including the per-channel
idle-period histograms, per-core stall accounting and predictor
statistics.  This is what keeps the content-addressed result cache valid
across engines (the cache key deliberately excludes the engine).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import DRStrangeConfig
from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization
from repro.sim.config import (
    DESIGN_DRSTRANGE,
    DESIGN_GREEDY_IDLE,
    DESIGN_RNG_OBLIVIOUS,
    ENGINE_EVENT,
    ENGINE_TICK,
    SimulationConfig,
)
from repro.sim.engine import EventEngine
from repro.sim.system import System
from repro.workloads.mixes import (
    ROW_OFFSET_STRIDE,
    build_traces,
    dual_core_mixes,
    four_core_group_mixes,
    multi_core_group_mixes,
)
from repro.workloads.suites import applications_by_category, representative_subset
from repro.workloads.synthetic import generate_application_trace


def run_both(traces, config: SimulationConfig):
    """Run the same traces under both engines; return both result dicts."""
    tick = System(list(traces), dataclasses.replace(config, engine=ENGINE_TICK)).run()
    event = System(list(traces), dataclasses.replace(config, engine=ENGINE_EVENT)).run()
    return dataclasses.asdict(tick), dataclasses.asdict(event)


def run_event_instrumented(traces, config: SimulationConfig):
    """Run the event engine directly so its window counters are readable."""
    system = System(list(traces), dataclasses.replace(config, engine=ENGINE_EVENT))
    engine = EventEngine()
    cycle = engine.run(system)
    system.cycle = cycle
    for controller in system.controllers:
        controller.flush_idle_period()
    return dataclasses.asdict(system._build_result(cycle)), engine, system


def assert_identical(traces, config: SimulationConfig) -> None:
    tick, event = run_both(traces, config)
    # Compare field by field first for a readable failure, then in full.
    for field_name, tick_value in tick.items():
        assert event[field_name] == tick_value, f"engines diverge in {field_name!r}"
    assert event == tick


@pytest.fixture(scope="module")
def dual_core_traces():
    apps = representative_subset(4)
    mix = dual_core_mixes(apps)[0]
    mapping = AddressMapping(DRAMOrganization())
    return build_traces(mix, 12_000, seed=0, mapping=mapping)


@pytest.fixture(scope="module")
def four_core_traces():
    mix = four_core_group_mixes(workloads_per_group=1)["LLHS"][0]
    mapping = AddressMapping(DRAMOrganization())
    return build_traces(mix, 8_000, seed=1, mapping=mapping)


@pytest.mark.parametrize("design", [DESIGN_RNG_OBLIVIOUS, DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE])
@pytest.mark.parametrize("scheduler", ["fr-fcfs", "fr-fcfs+cap", "bliss"])
@pytest.mark.parametrize("predictor", ["simple", "rl", "none"])
def test_engines_identical_designs_schedulers_predictors(
    dual_core_traces, design, scheduler, predictor
):
    config = SimulationConfig(
        design=design,
        scheduler=scheduler,
        drstrange=DRStrangeConfig(predictor=predictor),
    )
    assert_identical(dual_core_traces, config)


@pytest.mark.parametrize("design", [DESIGN_RNG_OBLIVIOUS, DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE])
@pytest.mark.parametrize("channels", [1, 2])
def test_engines_identical_across_channel_counts(design, channels):
    organization = DRAMOrganization(channels=channels)
    config = SimulationConfig(design=design, organization=organization)
    apps = representative_subset(4)
    mix = dual_core_mixes(apps)[0]
    traces = build_traces(mix, 10_000, seed=3, mapping=AddressMapping(organization))
    assert_identical(traces, config)


@pytest.mark.parametrize("priority_mode", ["rng-high", "non-rng-high"])
def test_engines_identical_priority_modes(dual_core_traces, priority_mode):
    config = SimulationConfig(design=DESIGN_DRSTRANGE, priority_mode=priority_mode)
    assert_identical(dual_core_traces, config)


@pytest.mark.parametrize("design", [DESIGN_RNG_OBLIVIOUS, DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE])
def test_engines_identical_four_core(four_core_traces, design):
    assert_identical(four_core_traces, SimulationConfig(design=design))


def test_engines_identical_at_cycle_limit(dual_core_traces):
    """The runaway guard clips both engines at the same cycle."""
    config = SimulationConfig(design=DESIGN_DRSTRANGE, max_cycles=1_500)
    tick, event = run_both(dual_core_traces, config)
    assert tick["total_cycles"] == 1_500
    assert event == tick


def test_component_event_bound_contracts(dual_core_traces):
    """The next_event_cycle/skip_cycles contracts the engine specialises.

    The event engine inlines parts of these for speed; this test keeps
    the public methods honest so an edit to one of them cannot silently
    diverge from what the engine actually does.
    """
    from repro.core.idleness_predictor import SimpleIdlenessPredictor
    from repro.dram.bank import Bank
    from repro.dram.timing import DRAMTiming

    system = System(list(dual_core_traces), SimulationConfig(design=DESIGN_DRSTRANGE))
    processor = system.processor

    # A freshly built processor has issuable cores: the bound is "now".
    assert processor.next_event_cycle(0) == 0

    # Predictors are purely reactive; banks expose their earliest-ready
    # cycle as max(now, ready_at).
    assert SimpleIdlenessPredictor().next_event_cycle(123) is None
    bank = Bank(0, DRAMTiming())
    bank.complete_access(50)
    assert bank.earliest_ready_cycle(10) == 50
    assert bank.earliest_ready_cycle(60) == 60

    # Processor.skip_cycles delegates to every core: advancing a core in
    # a pure bubble stream by its own quiet bound retires exactly one
    # issue width per skipped cycle.
    core = processor.cores[0]
    core.tick(0)  # prime the window with the first bubble batch
    core.tick(1)
    bound = core.next_event_cycle(2)
    if bound is not None and bound > 2:
        before = core.stats.instructions
        processor.skip_cycles(2, bound)
        slots = core.config.slots_per_bus_cycle
        assert core.stats.instructions == before + slots * (bound - 2)

    # RNGSubsystem: no deferred work means no self-generated events; a
    # deferred completion bounds the next event at its cycle.
    rng = system.rng_subsystem
    assert rng.next_event_cycle(0) is None
    rng._defer(17, lambda cycle: None)
    assert rng.next_event_cycle(0) == 17
    rng.skip_cycles(0, 10)
    assert rng.now == 9


def test_idle_period_histograms_match_per_channel(dual_core_traces):
    """Spot-check the statistic the idleness figures are built from."""
    tick, event = run_both(dual_core_traces, SimulationConfig(design=DESIGN_DRSTRANGE))
    for tick_channel, event_channel in zip(tick["channels"], event["channels"]):
        assert event_channel["idle_periods"] == tick_channel["idle_periods"]
        assert event_channel["idle_cycles"] == tick_channel["idle_cycles"]
        assert event_channel["busy_cycles"] == tick_channel["busy_cycles"]
        assert event_channel["rng_mode_cycles"] == tick_channel["rng_mode_cycles"]


# --------------------------------------------------------------- dense workloads
#
# fig18's 8-core high-memory-intensity groups are the batched-serve fast
# path's home turf: deep read queues, every core window-stalled most of
# the time.  These cases keep that path under tier-1 coverage (the fuzz
# harness and the nightly sweep are the wider nets) and additionally
# assert — via the engine's window counters — that the fast path actually
# engaged, so a silently disabled optimisation cannot pass as "identical".


@pytest.fixture(scope="module")
def dense_eight_core_traces():
    """fig18 H-group shape: eight high-intensity non-RNG applications."""
    mapping = AddressMapping(DRAMOrganization())
    pool = applications_by_category()["H"]
    return [
        generate_application_trace(
            pool[slot % len(pool)],
            8_000,
            seed=131 + slot,
            mapping=mapping,
            row_offset=slot * ROW_OFFSET_STRIDE,
        )
        for slot in range(8)
    ]


@pytest.mark.parametrize("design", [DESIGN_RNG_OBLIVIOUS, DESIGN_DRSTRANGE])
def test_engines_identical_dense_eight_core(dense_eight_core_traces, design):
    """Dense 8-core H groups are bit-identical and exercise serve windows."""
    config = SimulationConfig(design=design)
    tick = dataclasses.asdict(
        System(list(dense_eight_core_traces), dataclasses.replace(config, engine=ENGINE_TICK)).run()
    )
    event, engine, _ = run_event_instrumented(dense_eight_core_traces, config)
    assert event == tick
    assert engine.serve_windows > 0, "batched-serve fast path never engaged on a dense workload"
    assert engine.serve_window_cycles > engine.serve_windows, "windows never exceeded one cycle"


def test_serve_window_breaks_on_mid_window_wake_and_enqueue(dense_eight_core_traces):
    """The riskiest edge of the fast path: a completion inside a window
    re-activates a stalled core, whose enqueues must land *after* every
    in-window serve decision and break the window there.  In a dense run
    this happens thousands of times; bit-identity plus engaged-and-bounded
    window counters pin the behaviour."""
    config = SimulationConfig(design=DESIGN_RNG_OBLIVIOUS)
    tick = dataclasses.asdict(
        System(list(dense_eight_core_traces), dataclasses.replace(config, engine=ENGINE_TICK)).run()
    )
    event, engine, _ = run_event_instrumented(dense_eight_core_traces, config)
    assert event == tick
    assert engine.serve_windows > 0
    # Wakes/enqueues must bound windows well below the whole run: a single
    # run-length window would mean mid-window events were ignored.
    assert engine.serve_window_cycles < tick["total_cycles"]
    average_window = engine.serve_window_cycles / engine.serve_windows
    assert average_window < 30, f"windows implausibly long ({average_window:.1f} cycles)"


def test_serve_window_breaks_on_bliss_clearing_boundary(dense_eight_core_traces, monkeypatch):
    """A BLISS clearing boundary inside a would-be window must break it.

    The clearing interval is shrunk so boundaries land inside the dense
    serving phase; the scheduler's clear counter proves boundaries fired
    while windows were forming, and bit-identity proves none was jumped.
    """
    import functools

    import repro.sim.system as system_module
    from repro.sched.bliss import BLISS

    monkeypatch.setattr(
        system_module, "BLISS", functools.partial(BLISS, clearing_interval=400)
    )
    config = SimulationConfig(design=DESIGN_RNG_OBLIVIOUS, scheduler="bliss")
    tick = dataclasses.asdict(
        System(list(dense_eight_core_traces), dataclasses.replace(config, engine=ENGINE_TICK)).run()
    )
    event, engine, system = run_event_instrumented(dense_eight_core_traces, config)
    assert event == tick
    assert engine.serve_windows > 0
    assert any(
        controller.scheduler.clear_events > 0 for controller in system.controllers
    ), "no BLISS clearing boundary fired; the regression scenario did not materialise"


def test_serve_window_breaks_on_rng_buffer_threshold_events(dense_eight_core_traces):
    """RNG traffic (buffer serves, fills, mode switches) inside a dense
    DR-STRaNGe run must bound or break serve windows, not be replayed by
    them."""
    mapping = AddressMapping(DRAMOrganization())
    mix = multi_core_group_mixes(8, workloads_per_group=1)["H"][0]
    traces = build_traces(mix, 8_000, seed=5, mapping=mapping)
    config = SimulationConfig(design=DESIGN_DRSTRANGE)
    tick = dataclasses.asdict(
        System(list(traces), dataclasses.replace(config, engine=ENGINE_TICK)).run()
    )
    event, engine, _ = run_event_instrumented(traces, config)
    assert event == tick
    assert tick["rng_requests"] > 0, "the mix produced no RNG traffic"
    assert engine.serve_windows > 0, "windows never formed around the RNG activity"


# Minimal fuzz-found counterexamples, pinned as regression tests (both
# reproduced latent engine divergences fixed in the same change that
# added them; tests/test_engine_fuzz.py holds the generator that found
# them and the ``run_case`` helper these reuse).


def _run_fuzz_case_both_engines(case):
    from test_engine_fuzz import materialize

    traces, config = materialize(case)
    tick = dataclasses.asdict(
        System(traces, dataclasses.replace(config, engine=ENGINE_TICK)).run()
    )
    traces, config = materialize(case)
    event = dataclasses.asdict(
        System(traces, dataclasses.replace(config, engine=ENGINE_EVENT)).run()
    )
    return tick, event


def test_final_cycle_finish_materialised_by_mixed_stretch():
    """A finish materialised *for the current, unprocessed cycle* must not
    end the run one cycle early.

    The mixed-stretch re-examination closes a quiet core's stretch through
    the current cycle when its event bound is the next cycle; when that
    materialisation set the last ``finish_cycle``, the engine used to
    break with ``cycle == finish`` — dropping the reference engine's
    final cycle from the memory side's accounting (one missing RNG-mode
    cycle, ``total_cycles`` off by one).  Fuzz-found (seed 77, case 38),
    shrunk and pinned.
    """
    case = {
        "seed": 1337203337, "index": 38, "instructions": 2500,
        "slots": [
            {"kind": "rng", "throughput_mbps": 5120.0},
            {"kind": "app", "mpki": 39.76, "row_locality": 0.704,
             "write_fraction": 0.005, "footprint_rows": 64},
        ],
        "design": "dr-strange", "scheduler": "fr-fcfs", "scheduler_cap": 2,
        "predictor": "rl", "buffer_entries": 4, "low_utilization_threshold": 2,
        "period_threshold": 10, "channels": 1, "banks_per_rank": 8,
        "read_queue_capacity": 32, "write_queue_capacity": 32,
        "write_drain_high": 16, "issue_lookahead": 0, "backend_latency": 10,
        "rng_mode_switch_penalty": 12, "issue_width": 1, "window_size": 8,
        "clock_ratio": 1, "priority_mode": "equal", "max_cycles": 5_000_000,
    }
    tick, event = _run_fuzz_case_both_engines(case)
    assert event == tick


def test_deferred_idle_segment_uses_open_time_buffer_state():
    """A deferred idle segment must replay the fill policy's predictor
    checks under the buffer state of the segment's *open*, not its close.

    A demand take elsewhere can drain the shared buffer at the very cycle
    an idle segment closes; the close used to consult the drained state
    and record a pending idleness prediction the reference ticks (which
    all saw a full buffer) never made — one extra scored prediction.
    Fuzz-found (seed 77, case 53), shrunk and pinned.
    """
    case = {
        "seed": 1178710291, "index": 53, "instructions": 1500,
        "slots": [
            {"kind": "app", "mpki": 1.742, "row_locality": 0.896,
             "write_fraction": 0.245, "footprint_rows": 256},
            {"kind": "rng", "throughput_mbps": 5120.0},
            {"kind": "app", "mpki": 22.827, "row_locality": 0.304,
             "write_fraction": 0.275, "footprint_rows": 64},
            {"kind": "app", "mpki": 2.393, "row_locality": 0.932,
             "write_fraction": 0.317, "footprint_rows": 8},
        ],
        "design": "dr-strange", "scheduler": "bliss", "scheduler_cap": 16,
        "predictor": "simple", "buffer_entries": 4,
        "low_utilization_threshold": 2, "period_threshold": 40,
        "channels": 4, "banks_per_rank": 4, "read_queue_capacity": 2,
        "write_queue_capacity": 32, "write_drain_high": 2,
        "issue_lookahead": 2, "backend_latency": 4,
        "rng_mode_switch_penalty": 12, "issue_width": 2, "window_size": 128,
        "clock_ratio": 1, "priority_mode": "equal", "max_cycles": 5_000_000,
    }
    tick, event = _run_fuzz_case_both_engines(case)
    assert event == tick
