"""Tests for the distributed execution subsystem.

Covers the wire protocol codecs, the executor abstraction, coordinator
fault tolerance (dead connections, lease expiry, bounded retries,
straggler re-issue) and — the acceptance bar — that a sweep sharded
across localhost worker processes is bit-identical to a serial run,
including when one worker is SIGKILLed mid-sweep.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cpu.trace import Trace, TraceEntry
from repro.distributed import (
    Coordinator,
    DistributedExecutor,
    parse_address,
    run_worker,
    spawn_local_worker,
    unit_from_wire,
    unit_to_wire,
)
from repro.distributed.protocol import (
    checkpoint_from_wire,
    checkpoint_message,
    config_from_wire,
    config_to_wire,
    decode_message,
    encode_message,
    hello_message,
    result_from_wire,
    result_to_wire,
)
from repro.experiments import fig06_dualcore_performance as fig6
from repro.orchestration import (
    InMemoryResultStore,
    ProcessPoolExecutor,
    ResultCache,
    SerialExecutor,
    SimulationUnit,
    execute_units,
    plan_experiment,
    point_key,
    run_experiment,
)
from repro.sim import checkpoint
from repro.sim.config import baseline_config, drstrange_config
from repro.sim.runner import AloneRunCache
from repro.sim.system import System
from repro.workloads.suites import representative_subset


def make_trace(name: str = "t", rng: bool = False, seed: int = 0, entries: int = 64) -> Trace:
    records = []
    for index in range(entries):
        records.append(
            TraceEntry(
                bubbles=3 + (index + seed) % 5,
                address=(index * 4096 + seed * 64) % (1 << 20),
                rng_bits=64 if rng and index % 16 == 0 else 0,
            )
        )
    return Trace(records, name=name, metadata={"seed": seed})


def make_unit(seed: int = 0, rng: bool = True) -> SimulationUnit:
    traces = [make_trace(f"u{seed}", rng=rng, seed=seed)]
    config = baseline_config()
    return SimulationUnit(key=point_key(traces, config), traces=traces, config=config)


# ----------------------------------------------------------------- protocol


class TestProtocol:
    def test_message_framing_round_trip(self):
        payload = {"type": "work", "unit": {"key": "abc"}}
        assert decode_message(encode_message(payload)) == payload

    def test_decode_rejects_non_messages(self):
        with pytest.raises(ValueError):
            decode_message(b"[1,2,3]\n")
        with pytest.raises(ValueError):
            decode_message(b"{not json\n")

    def test_config_round_trip_covers_nested_dataclasses(self):
        config = drstrange_config(scheduler="bliss", scheduler_cap=4, entropy_seed=9)
        assert config_from_wire(json.loads(json.dumps(config_to_wire(config)))) == config

    def test_unit_round_trip_preserves_content_key(self):
        unit = make_unit(seed=3)
        restored = unit_from_wire(json.loads(json.dumps(unit_to_wire(unit))))
        assert restored.key == unit.key
        assert point_key(restored.traces, restored.config) == unit.key

    def test_result_round_trip_is_exact(self):
        unit = make_unit()
        result = System(unit.traces, unit.config).run()
        assert result_from_wire(json.loads(json.dumps(result_to_wire(result)))) == result

    def test_parse_address(self):
        assert parse_address("10.0.0.7:9876") == ("10.0.0.7", 9876)
        for bad in ("localhost", ":80", "host:"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_checkpoint_round_trip_survives_json(self):
        blob = bytes(range(256))
        message = checkpoint_message("w0", "key", 1_234, blob)
        assert checkpoint_from_wire(json.loads(json.dumps(message))) == (1_234, blob)

    def test_checkpoint_from_wire_rejects_malformed_payloads(self):
        assert checkpoint_from_wire(None) is None
        assert checkpoint_from_wire("nope") is None
        assert checkpoint_from_wire({"cycle": "NaN", "data": "AA=="}) is None
        assert checkpoint_from_wire({"cycle": 5, "data": "not base64!!"}) is None
        assert checkpoint_from_wire({"cycle": 5}) is None


# ----------------------------------------------------------------- executors


class TestExecutors:
    def test_serial_and_pool_commit_identical_results(self):
        units = [make_unit(seed=s) for s in range(3)]
        serial_store, pool_store = InMemoryResultStore(), InMemoryResultStore()
        assert SerialExecutor().execute(units, serial_store) == 3
        assert ProcessPoolExecutor(jobs=2).execute(units, pool_store) == 3
        for unit in units:
            assert pool_store.get(unit.key) == serial_store.get(unit.key)

    def test_execute_units_skips_cached_points(self):
        units = [make_unit(seed=s) for s in range(2)]
        store = InMemoryResultStore()
        assert execute_units(units, store, executor=SerialExecutor()) == 2
        assert execute_units(units, store, executor=SerialExecutor()) == 0


# ----------------------------------------------------------------- coordinator

# Short timings so the fault-tolerance paths run in test time.
FAST = dict(lease_timeout=0.4, straggler_timeout=0.3, retry_seconds=0.05)


class FakeWorker:
    """A hand-driven protocol client for exercising the coordinator."""

    def __init__(self, address, name="fake"):
        self.connection = socket.create_connection(address)
        self.stream = self.connection.makefile("rb")
        self.send(hello_message(name))
        assert self.receive()["type"] == "welcome"

    def send(self, payload):
        self.connection.sendall(encode_message(payload))

    def receive(self):
        return decode_message(self.stream.readline())

    def lease(self):
        self.send({"type": "lease"})
        return self.receive()

    def lease_work(self, attempts=50):
        """Poll until the coordinator hands out a point (or give up)."""
        for _ in range(attempts):
            reply = self.lease()
            if reply["type"] == "work":
                return reply
            if reply["type"] == "done":
                return reply
            time.sleep(reply.get("seconds", 0.05))
        raise AssertionError("coordinator never handed out work")

    def finish(self, key, result):
        self.send({"type": "result", "key": key, "result": result_to_wire(result)})
        assert self.receive()["type"] == "ack"

    def close(self):
        try:
            self.connection.close()
        except OSError:
            pass


@pytest.fixture
def unit_and_result():
    unit = make_unit()
    return unit, System(unit.traces, unit.config).run()


class TestCoordinatorFaultTolerance:
    def test_happy_path_commits_to_store(self, unit_and_result):
        unit, result = unit_and_result
        store = InMemoryResultStore()
        coordinator = Coordinator([unit], store, **FAST)
        address = coordinator.start()
        try:
            worker = FakeWorker(address)
            work = worker.lease_work()
            assert work["unit"]["key"] == unit.key
            worker.finish(unit.key, result)
            assert coordinator.wait(timeout=5)
            assert not coordinator.failed_keys
            assert store.get(unit.key) == result
            assert worker.lease()["type"] == "done"
            worker.close()
        finally:
            coordinator.stop()

    def test_dead_connection_requeues_point(self, unit_and_result):
        unit, result = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        address = coordinator.start()
        try:
            first = FakeWorker(address, "doomed")
            assert first.lease_work()["type"] == "work"
            first.close()  # dies holding the lease
            second = FakeWorker(address, "survivor")
            work = second.lease_work()
            assert work["type"] == "work" and work["unit"]["key"] == unit.key
            second.finish(unit.key, result)
            assert coordinator.wait(timeout=5)
            assert not coordinator.failed_keys
        finally:
            coordinator.stop()

    def test_lease_expires_without_heartbeats(self, unit_and_result):
        unit, result = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        address = coordinator.start()
        try:
            silent = FakeWorker(address, "silent")
            assert silent.lease_work()["type"] == "work"
            # No heartbeats: the reaper must revoke the lease and hand the
            # point to the other worker while `silent` stays connected.
            other = FakeWorker(address, "other")
            work = other.lease_work()
            assert work["type"] == "work" and work["unit"]["key"] == unit.key
            other.finish(unit.key, result)
            assert coordinator.wait(timeout=5)
            silent.close()
            other.close()
        finally:
            coordinator.stop()

    def test_heartbeats_keep_lease_alive(self, unit_and_result):
        unit, result = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        address = coordinator.start()
        try:
            worker = FakeWorker(address, "beating")
            assert worker.lease_work()["type"] == "work"
            deadline = time.monotonic() + 3 * FAST["lease_timeout"]
            while time.monotonic() < deadline:
                worker.send({"type": "heartbeat", "key": unit.key})
                time.sleep(FAST["lease_timeout"] / 4)
            # Lease must still be held (never requeued as an attempt).
            snapshot = coordinator.snapshot()
            assert snapshot["leases"] and snapshot["pending"] == 0
            worker.finish(unit.key, result)
            assert coordinator.wait(timeout=5)
            assert not coordinator.failed_keys
        finally:
            coordinator.stop()

    def test_bounded_retries_mark_point_failed(self, unit_and_result):
        unit, _ = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), max_attempts=2, **FAST)
        address = coordinator.start()
        try:
            for attempt in range(2):
                worker = FakeWorker(address, f"crash-{attempt}")
                assert worker.lease_work()["type"] == "work"
                worker.close()
                time.sleep(0.05)
            assert coordinator.wait(timeout=5)
            assert unit.key in coordinator.failed_keys
        finally:
            coordinator.stop()

    def test_worker_error_reports_count_as_attempts(self, unit_and_result):
        unit, _ = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), max_attempts=1, **FAST)
        address = coordinator.start()
        try:
            worker = FakeWorker(address, "buggy")
            assert worker.lease_work()["type"] == "work"
            worker.send({"type": "error", "key": unit.key, "error": "ValueError: boom"})
            assert worker.receive()["type"] == "ack"
            assert coordinator.wait(timeout=5)
            assert coordinator.failed_keys[unit.key] == "ValueError: boom"
        finally:
            coordinator.stop()

    def test_failed_duplicates_cannot_kill_a_live_lease(self, unit_and_result):
        """Error reports against straggler duplicates must not fail a point
        that a healthy (heartbeating) worker is still simulating."""
        unit, result = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), max_attempts=1, **FAST)
        address = coordinator.start()
        try:
            slow = FakeWorker(address, "slow")
            assert slow.lease_work()["type"] == "work"
            beating = threading.Event()

            def beat():
                while not beating.wait(FAST["lease_timeout"] / 4):
                    slow.send({"type": "heartbeat", "key": unit.key})

            beater = threading.Thread(target=beat, daemon=True)
            beater.start()
            try:
                # A duplicate holder errors out; attempts now equal
                # max_attempts, but the slow worker's live lease must keep
                # the point alive.
                hurry = FakeWorker(address, "hurry")
                assert hurry.lease_work()["type"] == "work"
                hurry.send({"type": "error", "key": unit.key, "error": "RuntimeError: flaky"})
                assert hurry.receive()["type"] == "ack"
                assert not coordinator.failed_keys

                slow.finish(unit.key, result)
                assert coordinator.wait(timeout=5)
                assert not coordinator.failed_keys
            finally:
                beating.set()
                beater.join(timeout=2)
        finally:
            coordinator.stop()

    def test_straggler_point_is_reissued(self, unit_and_result):
        unit, result = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        address = coordinator.start()
        try:
            slow = FakeWorker(address, "slow")
            assert slow.lease_work()["type"] == "work"
            hurry = FakeWorker(address, "hurry")

            # Keep the slow worker's lease alive so only the straggler
            # deadline (not lease expiry) can re-issue the point.
            beating = threading.Event()

            def beat():
                while not beating.wait(FAST["lease_timeout"] / 4):
                    slow.send({"type": "heartbeat", "key": unit.key})

            beater = threading.Thread(target=beat, daemon=True)
            beater.start()
            try:
                work = hurry.lease_work()
                assert work["type"] == "work" and work["unit"]["key"] == unit.key
                hurry.finish(unit.key, result)
                assert coordinator.wait(timeout=5)
                assert not coordinator.failed_keys
            finally:
                beating.set()
                beater.join(timeout=2)
        finally:
            coordinator.stop()


class TestCheckpointResume:
    """Killed workers lose at most one checkpoint interval: the coordinator
    re-leases their *checkpoint*, and the rescuer resumes mid-run instead
    of restarting — with a bit-identical final result."""

    def _wait_for_checkpoint(self, coordinator, key, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with coordinator._lock:
                point = coordinator._points[key]
                if point.checkpoint is not None:
                    return dict(point.checkpoint)
            time.sleep(0.01)
        raise AssertionError("coordinator never recorded the streamed checkpoint")

    def test_rescuer_resumes_from_dead_workers_checkpoint(self):
        unit = make_unit(seed=7)
        straight = System(list(unit.traces), unit.config).run()
        store = InMemoryResultStore()
        coordinator = Coordinator([unit], store, **FAST)
        host, port = coordinator.start()
        try:
            doomed = FakeWorker((host, port), "doomed")
            work = doomed.lease_work()
            assert work["type"] == "work"
            assert work.get("checkpoint") is None  # fresh point: no prefix yet

            # Simulate half the point, stream the snapshot, then die holding
            # the lease — exactly what a SIGKILLed checkpointing worker
            # leaves behind.
            half = straight.total_cycles // 2
            system = System(list(unit.traces), unit.config)
            system.advance(stop_at=half)
            doomed.send(
                checkpoint_message("doomed", unit.key, system.cycle, checkpoint.snapshot(system))
            )
            self._wait_for_checkpoint(coordinator, unit.key)
            doomed.close()

            stats = run_worker(
                f"{host}:{port}",
                worker_id="rescuer",
                checkpoint_interval=200,
                log=lambda text: None,
            )
            assert stats.simulated == 1
            assert coordinator.wait(timeout=5)
            assert not coordinator.failed_keys
            # Resume-not-restart, proven by simulated-cycle accounting.
            log = coordinator.resume_log[unit.key]
            assert log["resumed_from"] == system.cycle > 0
            assert log["simulated_cycles"] == straight.total_cycles - system.cycle
            assert log["worker"] == "rescuer"
            assert store.get(unit.key) == straight
        finally:
            coordinator.stop()

    def test_coordinator_keeps_only_the_newest_checkpoint(self, unit_and_result):
        unit, result = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        host, port = coordinator.start()
        try:
            worker = FakeWorker((host, port), "streamer")
            assert worker.lease_work()["type"] == "work"
            system = System(list(unit.traces), unit.config)
            system.advance(stop_at=100)
            late = checkpoint.snapshot(system)
            worker.send(checkpoint_message("streamer", unit.key, 100, late))
            recorded = self._wait_for_checkpoint(coordinator, unit.key)
            assert recorded["cycle"] == 100
            # A stale duplicate (straggler at an earlier cycle) must not
            # overwrite the newer checkpoint.
            worker.send(checkpoint_message("streamer", unit.key, 50, b"stale"))
            worker.send({"type": "heartbeat", "key": unit.key})  # force ordering
            time.sleep(0.05)
            with coordinator._lock:
                assert coordinator._points[unit.key].checkpoint["cycle"] == 100
            worker.finish(unit.key, result)
            assert coordinator.wait(timeout=5)
        finally:
            coordinator.stop()

    def test_worker_without_checkpointing_still_interoperates(self, unit_and_result):
        """A checkpoint attached to a re-lease is advisory: plain workers
        (no --checkpoint-interval) ignore it and restart from cycle 0."""
        unit, _ = unit_and_result
        store = InMemoryResultStore()
        coordinator = Coordinator([unit], store, **FAST)
        host, port = coordinator.start()
        try:
            doomed = FakeWorker((host, port), "doomed")
            assert doomed.lease_work()["type"] == "work"
            system = System(list(unit.traces), unit.config)
            system.advance(stop_at=100)
            doomed.send(
                checkpoint_message("doomed", unit.key, 100, checkpoint.snapshot(system))
            )
            self._wait_for_checkpoint(coordinator, unit.key)
            doomed.close()
            stats = run_worker(f"{host}:{port}", worker_id="plain", log=lambda text: None)
            assert stats.simulated == 1
            assert coordinator.wait(timeout=5)
            assert store.get(unit.key) == System(unit.traces, unit.config).run()
            assert unit.key not in coordinator.resume_log  # restarted, no accounting
        finally:
            coordinator.stop()


# ----------------------------------------------------------------- end to end


class TestDistributedSweep:
    KWARGS = dict(instructions=4_000)

    @pytest.fixture(scope="class")
    def serial_data(self):
        return fig6.run(cache=AloneRunCache(), apps=representative_subset(2), **self.KWARGS)

    def test_distributed_matches_serial_exactly(self, tmp_path, serial_data):
        store = ResultCache(tmp_path)
        executor = DistributedExecutor(spawn_workers=2, timeout=300)
        data = run_experiment(
            "fig6", store=store, executor=executor,
            apps=representative_subset(2), **self.KWARGS,
        )
        assert json.dumps(data, sort_keys=True) == json.dumps(serial_data, sort_keys=True)
        assert executor.last_coordinator.results_committed > 0

    def test_sweep_survives_sigkilled_worker(self, tmp_path, serial_data):
        """Kill one of two workers mid-sweep; output must stay bit-identical."""
        units = plan_experiment("fig6", apps=representative_subset(2), **self.KWARGS)
        store = ResultCache(tmp_path)
        coordinator = Coordinator(units, store, lease_timeout=5.0, retry_seconds=0.05)
        host, port = coordinator.start()
        victim = spawn_local_worker(host, port, 0)
        survivor = spawn_local_worker(host, port, 1)
        try:
            # Kill the victim as soon as it holds a lease (i.e. mid-point).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snapshot = coordinator.snapshot()
                if any(lease["worker"] == "local-0" for lease in snapshot["leases"]):
                    break
                if snapshot["completed"] == snapshot["points"]:
                    break  # tiny run finished before the kill; still a valid run
                time.sleep(0.01)
            victim.kill()  # SIGKILL: no goodbye, no flush — the TCP drop is the only signal
            assert coordinator.wait(timeout=300)
            assert not coordinator.failed_keys
        finally:
            victim.kill()
            survivor.wait(timeout=30)
            survivor.kill()
            coordinator.stop()

        for unit in units:
            assert store.get(unit.key) is not None
        replayed = run_experiment(
            "fig6", store=store, apps=representative_subset(2), **self.KWARGS
        )
        assert json.dumps(replayed, sort_keys=True) == json.dumps(serial_data, sort_keys=True)

    def test_sigkilled_checkpointing_worker_resumes_not_restarts(self, tmp_path, serial_data):
        """SIGKILL a checkpoint-streaming worker mid-point: the rescuer must
        resume from the streamed checkpoint (simulated-cycle accounting
        proves it) and the sweep's export stays byte-identical to serial."""
        units = plan_experiment("fig6", apps=representative_subset(2), **self.KWARGS)
        store = ResultCache(tmp_path)
        # Only lease expiry may re-issue the victim's point (a straggler
        # re-issue could hand it out *before* the kill and commit a fresh,
        # non-resumed result, muddying the accounting we assert on).
        coordinator = Coordinator(
            units, store, lease_timeout=2.0, straggler_timeout=600.0, retry_seconds=0.05
        )
        host, port = coordinator.start()
        victim = spawn_local_worker(host, port, 0, checkpoint_interval=200)
        rescuer = None
        try:
            # Kill the victim the moment one of its points has a streamed
            # checkpoint on the coordinator — i.e. provably mid-point.
            target = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and target is None:
                with coordinator._lock:
                    for key, point in coordinator._points.items():
                        if point.checkpoint is not None and not point.done:
                            target = key
                            break
                if coordinator.wait(0):
                    break
                time.sleep(0.01)
            victim.kill()  # SIGKILL: no goodbye, no flush
            assert target is not None, "run finished before any checkpoint streamed"
            rescuer = spawn_local_worker(host, port, 1, checkpoint_interval=200)
            assert coordinator.wait(timeout=300)
            assert not coordinator.failed_keys
            log = coordinator.resume_log.get(target)
            assert log is not None, "victim's point was never resumed"
            assert log["resumed_from"] > 0  # resumed from the checkpoint, not cycle 0
            assert log["simulated_cycles"] > 0
        finally:
            victim.kill()
            if rescuer is not None:
                rescuer.wait(timeout=30)
                rescuer.kill()
            coordinator.stop()

        replayed = run_experiment(
            "fig6", store=store, apps=representative_subset(2), **self.KWARGS
        )
        assert json.dumps(replayed, sort_keys=True) == json.dumps(serial_data, sort_keys=True)

    def test_executor_raises_when_points_cannot_complete(self):
        # The parametric TRNG demands an explicit throughput, so this unit
        # raises inside every worker that tries it: each attempt reports an
        # error and the bounded-retry path must surface the failure instead
        # of looping forever.
        traces = [make_trace("poison")]
        config = baseline_config(trng_name="parametric")
        broken = SimulationUnit(key=point_key(traces, config), traces=traces, config=config)
        executor = DistributedExecutor(spawn_workers=1, timeout=120, max_attempts=2)
        with pytest.raises(RuntimeError, match="exhausted"):
            executor.execute([broken], InMemoryResultStore())

    def test_executor_detects_dead_worker_fleet(self, monkeypatch):
        # Every self-spawned worker dies instantly: the run must error out
        # (points nobody will ever lease), not hang forever.
        import repro.distributed.executor as executor_module

        monkeypatch.setattr(
            executor_module,
            "spawn_local_worker",
            lambda host, port, index=0, **kwargs: subprocess.Popen(
                [sys.executable, "-c", "raise SystemExit(3)"]
            ),
        )
        executor = DistributedExecutor(spawn_workers=2, timeout=60)
        with pytest.raises(RuntimeError, match="self-spawned worker"):
            executor.execute([make_unit()], InMemoryResultStore())


class TestWorkerLoop:
    def test_worker_runs_in_process_against_coordinator(self, unit_and_result):
        """`run_worker` (the CLI's engine) drains a queue without subprocesses."""
        unit, _ = unit_and_result
        store = InMemoryResultStore()
        coordinator = Coordinator([unit], store, **FAST)
        host, port = coordinator.start()
        try:
            stats = run_worker(f"{host}:{port}", worker_id="inproc", log=lambda text: None)
            assert stats.simulated == 1
            assert coordinator.wait(timeout=5)
            assert store.get(unit.key) == System(unit.traces, unit.config).run()
        finally:
            coordinator.stop()

    def test_worker_rejects_bad_address(self):
        with pytest.raises(ValueError):
            run_worker("no-port-here", log=lambda text: None)


class TestCoordinatorShutdown:
    def test_reaper_exits_promptly_after_last_commit(self, unit_and_result):
        """The reaper blocks on the finished event, not a plain sleep, so
        the coordinator releases its threads (and port) the moment the
        last commit lands — not up to a full reaper interval later."""
        unit, result = unit_and_result
        # A long lease timeout pins the reaper interval at its 1s cap;
        # with the old `time.sleep(interval)` the reaper thread would
        # survive ~1s past the final commit and `stop()` would block on
        # joining it.
        coordinator = Coordinator(
            [unit], InMemoryResultStore(), lease_timeout=60.0, retry_seconds=0.05
        )
        address = coordinator.start()
        try:
            worker = FakeWorker(address)
            assert worker.lease_work()["type"] == "work"
            worker.finish(unit.key, result)
            assert coordinator.wait(timeout=5)
            reaper = next(
                thread
                for thread in coordinator._threads
                if thread.name == "coord-reaper"
            )
            reaper.join(timeout=0.5)
            assert not reaper.is_alive(), "reaper still sleeping after the run finished"
            start = time.monotonic()
            coordinator.stop()
            stop_latency = time.monotonic() - start
            assert stop_latency < 0.5, f"stop() took {stop_latency:.2f}s"
            worker.close()
        finally:
            coordinator.stop()
        # The port is released: a fresh coordinator can bind it again.
        rebound = socket.create_server(address, reuse_port=False)
        rebound.close()


class _BlockingFailingStore:
    """Store whose put blocks until released, then raises (fault injection)."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def get(self, key):
        return None

    def put(self, key, result):
        self.entered.set()
        if not self.release.wait(timeout=10):  # pragma: no cover - safety net
            raise AssertionError("fault-injection store never released")
        raise OSError("injected commit failure")


class TestCommitFailureSettlement:
    def test_point_settles_when_last_lease_dies_during_failing_commit(self, unit_and_result):
        """The race the settlement re-check closes: the point's last lease
        dies while its result is mid-commit, and the commit then fails.

        The lease revocation must defer settlement to the in-flight
        commit (a live commit may still complete the point), and the
        commit's failure path must then re-check settlement — otherwise
        the point stays permanently unsettled and the run never
        finishes."""
        unit, result = unit_and_result
        store = _BlockingFailingStore()
        coordinator = Coordinator([unit], store, max_attempts=1, **FAST)
        address = coordinator.start()
        try:
            committer = FakeWorker(address, "committer")
            straggler = FakeWorker(address, "straggler")
            assert committer.lease_work()["type"] == "work"
            # A straggler duplicate lease keeps a second lease alive.
            work = straggler.lease_work()
            assert work["type"] == "work" and work["unit"]["key"] == unit.key

            # The committer's result enters the (blocking) store commit.
            committer.send(
                {"type": "result", "key": unit.key, "result": result_to_wire(result)}
            )
            assert store.entered.wait(timeout=5), "commit never reached the store"

            # Now the last lease dies while point.committing is set; with
            # max_attempts=1 the attempt bound is already exhausted, so
            # only the commit-failure re-check can settle the point.
            straggler.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if not coordinator.snapshot()["leases"]:
                    break
                time.sleep(0.02)
            assert not coordinator.snapshot()["leases"], "straggler lease never revoked"

            # Let the commit fail.  The settlement re-check must mark the
            # point failed and finish the run instead of hanging it.
            store.release.set()
            assert coordinator.wait(timeout=5), "run hung on a permanently unsettled point"
            assert unit.key in coordinator.failed_keys
            assert "commit failed" in coordinator.failed_keys[unit.key]
            committer.close()
        finally:
            coordinator.stop()
