"""Tests for the buffer fill policies and the RNG subsystem."""

import pytest

from repro.controller.config import ControllerConfig
from repro.controller.memory_controller import ChannelController
from repro.controller.request import make_read
from repro.core.fill_policies import DRStrangeFillPolicy, GreedyIdleFillPolicy, NoFillPolicy
from repro.core.idleness_predictor import SimpleIdlenessPredictor
from repro.core.rng_buffer import RandomNumberBuffer
from repro.core.rng_scheduler import ApplicationRegistry
from repro.core.rng_subsystem import RNGSubsystem
from repro.dram.dram_system import DRAMSystem
from repro.trng.drange import DRaNGe


def build_controller(fill_policy=None, separate_rng_queue=True):
    dram = DRAMSystem()
    controller = ChannelController(
        channel=dram.channels[0],
        dram=dram,
        config=ControllerConfig(),
        trng=DRaNGe(),
        fill_policy=fill_policy,
        separate_rng_queue=separate_rng_queue,
    )
    return dram, controller


class TestNoFillPolicy:
    def test_never_fills(self):
        dram, controller = build_controller(NoFillPolicy())
        for cycle in range(200):
            controller.tick(cycle)
        assert controller.stats.rng_fill_batches == 0


class TestDRStrangeFillPolicy:
    def test_fills_during_idle_without_predictor(self):
        buffer = RandomNumberBuffer(entries=16)
        policy = DRStrangeFillPolicy(buffer)
        dram, controller = build_controller(policy)
        for cycle in range(500):
            controller.tick(cycle)
        assert buffer.available_bits > 0
        assert controller.stats.rng_fill_batches > 0

    def test_stops_when_buffer_full(self):
        buffer = RandomNumberBuffer(entries=1)
        policy = DRStrangeFillPolicy(buffer)
        dram, controller = build_controller(policy)
        for cycle in range(2000):
            controller.tick(cycle)
        assert buffer.is_full
        assert buffer.stats.bits_dropped <= 8  # at most one overshooting batch

    def test_predictor_gates_filling(self):
        buffer = RandomNumberBuffer(entries=16)
        predictor = SimpleIdlenessPredictor(initial_counter=0)  # always predicts short
        policy = DRStrangeFillPolicy(buffer, predictors={0: predictor})
        dram, controller = build_controller(policy)
        for cycle in range(500):
            controller.tick(cycle)
        assert buffer.available_bits == 0

    def test_fill_interrupted_by_regular_request(self):
        buffer = RandomNumberBuffer(entries=64)
        policy = DRStrangeFillPolicy(buffer)
        dram, controller = build_controller(policy)
        for cycle in range(100):
            controller.tick(cycle)
        controller.enqueue(make_read(dram.mapping.encode(channel=0, bank=0, row=0, column=0), 0, 100))
        bits_at_interrupt = buffer.available_bits
        assert bits_at_interrupt > 0  # filling had begun before the read arrived
        for cycle in range(100, 400):
            controller.tick(cycle)
        # The pending read was eventually served despite buffer filling.
        assert controller.stats.served_reads == 1

    def test_low_utilization_threshold_validation(self):
        with pytest.raises(ValueError):
            DRStrangeFillPolicy(RandomNumberBuffer(16), low_utilization_threshold=-1)


class TestGreedyIdleFillPolicy:
    def test_adds_one_batch_per_long_idle_period(self):
        buffer = RandomNumberBuffer(entries=64)
        policy = GreedyIdleFillPolicy(buffer, period_threshold=40, bits_per_batch=8)
        dram, controller = build_controller(policy)
        for cycle in range(200):
            controller.tick(cycle)
        # One idle period of 200 cycles -> exactly one free batch.
        assert buffer.available_bits == 8
        assert policy.free_batches == 1
        assert controller.stats.rng_fill_batches == 0  # never enters RNG mode

    def test_no_batch_for_short_idle_periods(self):
        buffer = RandomNumberBuffer(entries=64)
        policy = GreedyIdleFillPolicy(buffer, period_threshold=40)
        dram, controller = build_controller(policy)
        address = dram.mapping.encode(channel=0, bank=0, row=0, column=0)
        for cycle in range(0, 300, 20):
            controller.enqueue(make_read(address, 0, cycle))
            for inner in range(cycle, cycle + 20):
                controller.tick(inner)
        assert buffer.available_bits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedyIdleFillPolicy(RandomNumberBuffer(16), period_threshold=0)
        with pytest.raises(ValueError):
            GreedyIdleFillPolicy(RandomNumberBuffer(16), bits_per_batch=0)


class TestRNGSubsystem:
    def _build(self, buffer=None):
        dram = DRAMSystem()
        registry = ApplicationRegistry()
        controllers = [
            ChannelController(
                channel=channel,
                dram=dram,
                config=ControllerConfig(),
                trng=DRaNGe(),
                separate_rng_queue=True,
            )
            for channel in dram.channels
        ]
        subsystem = RNGSubsystem(controllers, registry, buffer=buffer, buffer_serve_latency=2)
        return dram, registry, controllers, subsystem

    def _run(self, controllers, subsystem, start, cycles):
        for cycle in range(start, start + cycles):
            for controller in controllers:
                controller.tick(cycle)
            subsystem.tick(cycle)
        return start + cycles

    def test_request_marks_rng_application(self):
        dram, registry, controllers, subsystem = self._build()
        subsystem.request_random(64, core_id=3, callback=lambda cycle: None)
        assert registry.is_rng_application(3)

    def test_buffer_hit_served_with_low_latency(self):
        buffer = RandomNumberBuffer(entries=16)
        buffer.add_bits(1024)
        dram, registry, controllers, subsystem = self._build(buffer)
        completions = []
        subsystem.tick(10)
        subsystem.request_random(64, core_id=0, callback=completions.append)
        self._run(controllers, subsystem, 11, 20)
        assert completions and completions[0] <= 13
        assert subsystem.stats.buffer_serves == 1
        assert subsystem.buffer_serve_rate == 1.0

    def test_buffer_miss_falls_back_to_demand_generation(self):
        buffer = RandomNumberBuffer(entries=16)  # empty
        dram, registry, controllers, subsystem = self._build(buffer)
        completions = []
        subsystem.request_random(64, core_id=0, callback=completions.append)
        self._run(controllers, subsystem, 0, 800)
        assert completions, "demand generation should eventually complete"
        assert subsystem.stats.demand_generations == 1
        assert completions[0] >= DRaNGe().demand_latency_cycles(16, 4)

    def test_demand_generation_splits_across_all_channels(self):
        dram, registry, controllers, subsystem = self._build()
        subsystem.request_random(64, core_id=0, callback=lambda cycle: None)
        assert all(len(controller.rng_queue) == 1 for controller in controllers)
        assert controllers[0].rng_queue.oldest().rng_bits == 16

    def test_no_buffer_always_generates(self):
        dram, registry, controllers, subsystem = self._build(buffer=None)
        completions = []
        subsystem.request_random(64, core_id=0, callback=completions.append)
        self._run(controllers, subsystem, 0, 800)
        assert completions
        assert subsystem.stats.buffer_serves == 0

    def test_validation(self):
        dram, registry, controllers, subsystem = self._build()
        with pytest.raises(ValueError):
            subsystem.request_random(0, core_id=0, callback=lambda c: None)
        with pytest.raises(ValueError):
            RNGSubsystem([], ApplicationRegistry())
