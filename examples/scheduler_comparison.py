#!/usr/bin/env python3
"""Memory scheduler study: FR-FCFS+Cap vs BLISS vs the RNG-aware scheduler.

Reproduces the flavour of the paper's Figures 11 and 12 on a single
workload mix: it first compares the three memory request schedulers with
the random number buffer disabled (isolating the scheduling effect), and
then shows how OS-assigned application priorities steer the RNG-aware
scheduler (prioritising the RNG application vs. the non-RNG applications).

Run with:  python examples/scheduler_comparison.py
"""

from repro.core import DRStrangeConfig
from repro.sim import baseline_config, compare_designs, drstrange_config
from repro.workloads import application, standard_rng_benchmark, WorkloadMix

INSTRUCTIONS = 40_000


def scheduler_study(mix: WorkloadMix) -> None:
    print("--- scheduler comparison (no random number buffer) ---")
    configs = {
        "FR-FCFS+Cap (baseline)": baseline_config(),
        "BLISS": baseline_config(scheduler="bliss"),
        "RNG-aware scheduler": drstrange_config(drstrange=DRStrangeConfig(buffer_entries=0)),
    }
    results = compare_designs(mix, configs, instructions=INSTRUCTIONS)
    print(f"{'scheduler':>24} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'unfairness':>12}")
    for label, evaluation in results.items():
        print(
            f"{label:>24} {evaluation.non_rng_slowdown:>18.3f} "
            f"{evaluation.rng_slowdown:>14.3f} {evaluation.unfairness:>12.3f}"
        )


def priority_study(mix: WorkloadMix) -> None:
    print("\n--- priority-based RNG-aware scheduling (full DR-STRaNGe) ---")
    configs = {
        "equal priorities": drstrange_config(priority_mode="equal"),
        "non-RNG apps high priority": drstrange_config(priority_mode="non-rng-high"),
        "RNG app high priority": drstrange_config(priority_mode="rng-high"),
    }
    results = compare_designs(mix, configs, instructions=INSTRUCTIONS)
    print(f"{'priority assignment':>28} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'unfairness':>12}")
    for label, evaluation in results.items():
        print(
            f"{label:>28} {evaluation.non_rng_slowdown:>18.3f} "
            f"{evaluation.rng_slowdown:>14.3f} {evaluation.unfairness:>12.3f}"
        )


def main() -> None:
    mix = WorkloadMix(
        name="scheduler-study",
        slots=[application("mcf"), standard_rng_benchmark(5120.0)],
    )
    print(f"Workload: {mix.slots[0].name} (high memory intensity) + 5 Gb/s RNG benchmark\n")
    scheduler_study(mix)
    priority_study(mix)


if __name__ == "__main__":
    main()
