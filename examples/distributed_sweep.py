#!/usr/bin/env python3
"""Distributed sweep: shard a figure's simulation points across workers.

Runs Figure 6 twice — once serially, once through the distributed
executor with two self-spawned localhost worker processes — and checks
the exports are bit-identical.  The same code drives a multi-machine
run: bind the coordinator to a routable address and start workers on
other machines instead of (or in addition to) the self-spawned ones:

    # machine A (a persistent daemon; one-shot form: --executor distributed)
    PYTHONPATH=src python -m repro serve --bind 0.0.0.0:9876

    # machines B, C, ... (any number of workers, any time)
    PYTHONPATH=src python -m repro worker --target A:9876

    # submit from anywhere
    PYTHONPATH=src python -m repro submit fig6 --target A:9876

Run with:  PYTHONPATH=src python examples/distributed_sweep.py
"""

import json
import tempfile

from repro.distributed import DistributedExecutor
from repro.experiments import fig06_dualcore_performance as fig6
from repro.orchestration import ResultCache, SweepRequest, SweepStats, run_experiment
from repro.sim.runner import AloneRunCache
from repro.workloads.suites import representative_subset


def main() -> None:
    apps = representative_subset(4)

    print("Serial reference run...")
    serial = fig6.run(cache=AloneRunCache(), apps=apps, instructions=20_000)

    print("Distributed run: coordinator + 2 localhost workers...")
    stats = SweepStats()
    request = SweepRequest(experiments=("fig6",), instructions=20_000)
    with tempfile.TemporaryDirectory() as cache_dir:
        executor = DistributedExecutor(spawn_workers=2, timeout=600)
        # Experiment-module kwargs beyond the request's own fields (here
        # `apps`) pass through alongside it.
        distributed = run_experiment(
            request, store=ResultCache(cache_dir), executor=executor, stats=stats, apps=apps
        )["fig6"]

    identical = json.dumps(distributed, sort_keys=True) == json.dumps(serial, sort_keys=True)
    print(f"\npoints planned: {stats.planned}, executed by workers: {stats.executed}")
    print(f"bit-identical to the serial run: {identical}")
    if not identical:
        raise SystemExit("distributed output diverged from serial — this is a bug")
    print(fig6.format_table(distributed))


if __name__ == "__main__":
    main()
