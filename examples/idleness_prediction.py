#!/usr/bin/env python3
"""DRAM idleness prediction study.

Shows the two DR-STRaNGe idleness predictors at work:

1. extracts the DRAM idle-period structure of applications with different
   memory intensities (the Figure 5 analysis),
2. trains the simple 2-bit-counter predictor and the Q-learning predictor
   on those idle periods and compares their accuracy, false-positive and
   false-negative rates,
3. runs the full system with each predictor and reports the resulting
   buffer serve rate and application slowdowns (the Figure 13/14 view).

Run with:  python examples/idleness_prediction.py
"""

from repro.core import DRStrangeConfig, QLearningIdlenessPredictor, SimpleIdlenessPredictor
from repro.sim import baseline_config, compare_designs, drstrange_config, simulate
from repro.workloads import (
    WorkloadMix,
    application,
    build_traces,
    generate_application_trace,
    standard_rng_benchmark,
)

INSTRUCTIONS = 40_000


def idle_period_structure() -> None:
    print("--- DRAM idle period structure (single-core, baseline system) ---")
    print(f"{'application':>12} {'periods':>8} {'median':>8} {'>=40 cycles':>12} {'>=198 cycles':>13}")
    for name in ("ycsb1", "soplex", "mcf"):
        trace = generate_application_trace(application(name), INSTRUCTIONS, seed=1)
        result = simulate([trace], baseline_config())
        periods = sorted(result.all_idle_periods)
        if not periods:
            continue
        median = periods[len(periods) // 2]
        long8 = sum(1 for p in periods if p >= 40) / len(periods)
        long64 = sum(1 for p in periods if p >= 198) / len(periods)
        print(f"{name:>12} {len(periods):>8} {median:>8} {long8:>12.2f} {long64:>13.2f}")


def offline_predictor_training() -> None:
    print("\n--- offline predictor comparison on one application's idle periods ---")
    trace = generate_application_trace(application("soplex"), INSTRUCTIONS, seed=1)
    result = simulate([trace], baseline_config())
    periods = result.all_idle_periods

    simple = SimpleIdlenessPredictor(period_threshold=40)
    learner = QLearningIdlenessPredictor(period_threshold=40)
    address = 0
    for length in periods:
        for predictor in (simple, learner):
            predictor.predict_and_record(address)
            predictor.observe_idle_period(length, address)
        address += 64

    for label, predictor in (("simple 2-bit counters", simple), ("Q-learning agent", learner)):
        stats = predictor.stats
        print(
            f"  {label:>22}: accuracy {100 * stats.accuracy:.1f}%  "
            f"false positives {100 * stats.false_positive_rate:.1f}%  "
            f"false negatives {100 * stats.false_negative_rate:.1f}%"
        )


def end_to_end_comparison() -> None:
    print("\n--- end-to-end impact of the predictor choice (two-core workload) ---")
    mix = WorkloadMix(
        name="predictor-study",
        slots=[application("soplex"), standard_rng_benchmark(5120.0)],
    )
    configs = {
        "no predictor (fill on every idle cycle)": drstrange_config(
            drstrange=DRStrangeConfig(predictor="none")
        ),
        "simple idleness predictor": drstrange_config(drstrange=DRStrangeConfig(predictor="simple")),
        "RL idleness predictor": drstrange_config(drstrange=DRStrangeConfig(predictor="rl")),
    }
    results = compare_designs(mix, configs, instructions=INSTRUCTIONS)
    print(
        f"{'configuration':>40} {'non-RNG slowdown':>18} {'RNG slowdown':>14} "
        f"{'serve rate':>12} {'accuracy':>10}"
    )
    for label, evaluation in results.items():
        accuracy = evaluation.predictor_accuracy
        print(
            f"{label:>40} {evaluation.non_rng_slowdown:>18.3f} {evaluation.rng_slowdown:>14.3f} "
            f"{evaluation.buffer_serve_rate:>12.2f} "
            f"{('%5.0f%%' % (100 * accuracy)) if accuracy is not None else '    n/a':>10}"
        )


def main() -> None:
    idle_period_structure()
    offline_predictor_training()
    end_to_end_comparison()


if __name__ == "__main__":
    main()
