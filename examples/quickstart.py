#!/usr/bin/env python3
"""Quickstart: compare DR-STRaNGe against the RNG-oblivious baseline.

Builds a two-core workload (one memory-intensive application plus a
synthetic RNG benchmark that requires 5 Gb/s of true random numbers),
simulates it under the RNG-oblivious baseline, the Greedy Idle design and
DR-STRaNGe, and prints the headline metrics of the paper: slowdown of
each application class, the unfairness index, the buffer serve rate and
DRAM energy.

Run with:  python examples/quickstart.py
"""

from repro import baseline_config, drstrange_config, greedy_config
from repro.sim import compare_designs
from repro.workloads import application, standard_rng_benchmark, WorkloadMix


def main() -> None:
    # One memory-intensive SPEC-like application + the 5 Gb/s RNG benchmark.
    mix = WorkloadMix(
        name="quickstart",
        slots=[application("soplex"), standard_rng_benchmark(5120.0)],
    )

    configs = {
        "RNG-oblivious baseline": baseline_config(),
        "Greedy Idle design": greedy_config(),
        "DR-STRaNGe": drstrange_config(),
    }

    print(f"Workload: {mix.slots[0].name} + {mix.slots[1].name} (5 Gb/s RNG requirement)")
    print("Simulating the three designs (this takes a few seconds)...\n")
    results = compare_designs(mix, configs, instructions=40_000)

    header = f"{'design':>24} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'unfairness':>12} {'serve rate':>12} {'energy (uJ)':>12}"
    print(header)
    print("-" * len(header))
    for label, evaluation in results.items():
        print(
            f"{label:>24} {evaluation.non_rng_slowdown:>18.3f} {evaluation.rng_slowdown:>14.3f} "
            f"{evaluation.unfairness:>12.3f} {evaluation.buffer_serve_rate:>12.2f} "
            f"{evaluation.energy_nj / 1000:>12.1f}"
        )

    baseline = results["RNG-oblivious baseline"]
    drstrange = results["DR-STRaNGe"]
    print()
    print(
        "DR-STRaNGe vs baseline: "
        f"non-RNG {100 * (1 - drstrange.non_rng_slowdown / baseline.non_rng_slowdown):+.1f}%, "
        f"RNG {100 * (1 - drstrange.rng_slowdown / baseline.rng_slowdown):+.1f}%, "
        f"fairness {100 * (1 - drstrange.unfairness / baseline.unfairness):+.1f}%, "
        f"energy {100 * (1 - drstrange.energy_nj / baseline.energy_nj):+.1f}%"
    )
    print(
        f"Idleness predictor accuracy: {100 * (drstrange.predictor_accuracy or 0):.0f}%  |  "
        f"random numbers served from the buffer: {100 * drstrange.buffer_serve_rate:.0f}%"
    )


if __name__ == "__main__":
    main()
