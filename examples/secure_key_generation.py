#!/usr/bin/env python3
"""Secure key generation through the DR-STRaNGe application interface.

This example plays the role of a security application (the kind the
paper's introduction motivates: key generation, nonces, padding values)
using the library-level ``getrandom()``-style interface backed by a
DRAM-based TRNG and the random number buffer:

1. generates AES-256 keys and 96-bit nonces,
2. shows the latency difference between buffer hits (pre-generated bits)
   and on-demand DRAM TRNG generation,
3. validates the bit stream with the NIST-style statistical tests.

Run with:  python examples/secure_key_generation.py
"""

import numpy as np

from repro.core import RandomNumberBuffer, TRNGInterface
from repro.trng import DRaNGe, QUACTRNG
from repro.trng import quality


def generate_keys(interface: TRNGInterface, count: int = 8) -> None:
    print(f"  generating {count} AES-256 keys and 96-bit nonces")
    for index in range(count):
        key = interface.getrandom(32)       # 256-bit key
        nonce = interface.random_int(96)    # 96-bit nonce
        if index < 3:
            print(f"    key[{index}] = {key.hex()}  nonce = {nonce:024x}")
    stats = interface.stats
    print(
        f"  calls: {stats.calls}, served from buffer: {stats.buffer_serves} "
        f"({100 * stats.buffer_serve_rate:.0f}%), average latency: "
        f"{stats.average_latency_cycles:.0f} bus cycles"
    )


def main() -> None:
    print("=== D-RaNGe-backed interface, empty buffer (every call pays DRAM TRNG latency) ===")
    cold = TRNGInterface(DRaNGe(), buffer=RandomNumberBuffer(entries=16), keep_history=True)
    generate_keys(cold)

    print("\n=== D-RaNGe-backed interface, buffer pre-filled during idle DRAM periods ===")
    warm = TRNGInterface(DRaNGe(), buffer=RandomNumberBuffer(entries=64), keep_history=True)
    warm.prefill_buffer()
    generate_keys(warm)

    print("\n=== QUAC-TRNG-backed interface (higher throughput mechanism) ===")
    quac = TRNGInterface(QUACTRNG(), buffer=RandomNumberBuffer(entries=64), keep_history=True)
    quac.prefill_buffer()
    generate_keys(quac)

    print("\n=== randomness quality of the delivered bit stream ===")
    bits = warm.random_bits(50_000)
    for result in quality.run_all_tests(bits):
        print(f"  {result}")
    entropy = quality.shannon_entropy(bits)
    print(f"  shannon entropy: {entropy:.4f} bits per bit")
    ones = float(np.mean(bits))
    print(f"  fraction of ones: {ones:.4f}")
    assert quality.all_tests_pass(bits), "the TRNG output should pass all statistical tests"
    print("  all statistical tests passed")


if __name__ == "__main__":
    main()
