"""Benchmarks of the simulation hot path itself (engine-level, no cache).

Unlike the per-figure benchmarks, these construct a :class:`System`
directly so the measurement is pure simulation — no result cache, no
alone-run reuse, no trace generation inside the timed region.  The event
engine benchmark is the **regression gate**: CI compares its mean
against ``benchmarks/baseline.json`` (``--benchmark-compare``) and fails
on a >25% regression.

``test_engine_speedup_on_idle_heavy_figures`` demonstrates the
cycle-skipping engine's cold-run speedup on the idle-heavy figures the
paper's design exploits (Figures 5, 15, 18).  The assertions are
deliberately conservative floors (CI machines vary); the measured
ratios are printed for the record.  Representative numbers on a quiet
machine: fig05 ~4x, fig15 ~4.5x, fig18 ~2.4x (its 8-core
high-intensity groups have little idleness to skip), combined ~3x.
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro import telemetry
from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization
from repro.experiments import fig05_idle_periods, fig15_low_utilization, fig18_multicore_idle
from repro.sim.config import (
    ENGINE_COMPILED,
    ENGINE_EVENT,
    ENGINE_TICK,
    baseline_config,
    drstrange_config,
)
from repro.sim.runner import GLOBAL_ALONE_CACHE, engine_override
from repro.sim.system import System
from repro.workloads.mixes import ROW_OFFSET_STRIDE, build_traces, four_core_group_mixes
from repro.workloads.suites import applications_by_category
from repro.workloads.synthetic import generate_application_trace

from conftest import BENCH_INSTRUCTIONS

#: Scaled-down workload for the gated engine benchmark: one 4-core
#: DR-STRaNGe simulation exercises the scheduler, buffer, predictor and
#: RNG-mode paths together.
HOTPATH_INSTRUCTIONS = 15_000

#: Scaled-down fig18 H-group shape for the dense-workload gate: eight
#: high-memory-intensity applications keep every read queue deep, which
#: is exactly the regime the batched-serve fast path exists for.
DENSE_INSTRUCTIONS = 10_000

#: Per-core instruction count of the trace-replay kernel benchmark: a
#: two-core high-intensity run whose wall-clock is dominated by the
#: precompiled-trace request lifecycle rather than by serve windows.
KERNEL_INSTRUCTIONS = 30_000


def _hotpath_traces():
    mix = four_core_group_mixes(workloads_per_group=1)["LLHS"][0]
    mapping = AddressMapping(DRAMOrganization())
    return build_traces(mix, HOTPATH_INSTRUCTIONS, seed=0, mapping=mapping)


def _dense_traces():
    mapping = AddressMapping(DRAMOrganization())
    pool = applications_by_category()["H"]
    return [
        generate_application_trace(
            pool[slot % len(pool)],
            DENSE_INSTRUCTIONS,
            seed=slot,
            mapping=mapping,
            row_offset=slot * ROW_OFFSET_STRIDE,
        )
        for slot in range(8)
    ]


def _run(traces, engine: str):
    config = dataclasses.replace(drstrange_config(), engine=engine)
    return System(list(traces), config).run()


def _run_dense(traces, engine: str):
    config = dataclasses.replace(baseline_config(), engine=engine)
    return System(list(traces), config).run()


def test_engine_hotpath_event(benchmark):
    """The regression-gated hot path: one simulation on the event engine."""
    traces = _hotpath_traces()
    result = benchmark.pedantic(_run, args=(traces, ENGINE_EVENT), rounds=3, iterations=1)
    assert result.total_cycles > 0


def test_engine_hotpath_tick(benchmark):
    """Reference engine on the same workload (for the speedup record)."""
    traces = _hotpath_traces()
    result = benchmark.pedantic(_run, args=(traces, ENGINE_TICK), rounds=3, iterations=1)
    assert result.total_cycles > 0


def _kernel_traces():
    """Two high-intensity applications: the per-request lifecycle —
    precompiled-column replay, arena reuse, queue slot-array scans,
    issue/retire arithmetic — dominates, with minimal idleness for the
    engine to skip."""
    mapping = AddressMapping(DRAMOrganization())
    pool = applications_by_category()["H"]
    return [
        generate_application_trace(
            pool[slot % len(pool)],
            KERNEL_INSTRUCTIONS,
            seed=slot,
            mapping=mapping,
            row_offset=slot * ROW_OFFSET_STRIDE,
        )
        for slot in range(2)
    ]


def test_trace_replay_kernel(benchmark):
    """The trace-replay/request-lifecycle kernel in isolation (gated).

    A two-core run keeps every queue shallow, so wall-clock concentrates
    in the shared kernel (core column replay, request arena, scheduler
    slot scans) rather than in dense-window formation; together with
    ``test_fig18_dense`` the >25% gate covers both halves of the dense
    cost."""
    traces = _kernel_traces()
    result = benchmark.pedantic(_run_dense, args=(traces, ENGINE_EVENT), rounds=3, iterations=1)
    assert result.total_cycles > 0


def test_trace_replay_kernel_with_telemetry(benchmark):
    """The gated kernel with telemetry enabled: metrics must cost <2%.

    Wall-clock A/B comparisons of a ~2% effect are hopeless on shared CI
    runners, so the bound is *proven* instead of sampled: telemetry's
    registry counts every mutating operation it ever performs
    (``op_count``), recording happens only at per-simulation granularity,
    and the per-operation cost is measured directly on this machine.
    ops-per-run x seconds-per-op against the kernel's own measured time
    is the telemetry overhead — orders of magnitude under the 2% budget
    unless someone wires a metric into the per-cycle hot loop, which is
    exactly the regression this guards against.
    """
    traces = _kernel_traces()
    with telemetry.isolated(enabled=True) as registry:
        result = benchmark.pedantic(_run_dense, args=(traces, ENGINE_EVENT), rounds=3, iterations=1)
        runs = registry.snapshot()["counters"]["sim.runs"]
        ops = registry.op_count
    assert result.total_cycles > 0
    assert runs >= 3
    ops_per_run = ops / runs
    # O(1) per simulation: a handful of counters/timers, nothing per cycle.
    assert ops_per_run <= 16, f"telemetry did {ops_per_run:.0f} ops per simulation"
    # Measured per-operation cost on this machine (same lock, same dict path).
    probe = telemetry.MetricsRegistry()
    op_rounds = 10_000
    start = time.perf_counter()
    for _ in range(op_rounds):
        probe.counter("probe")
    seconds_per_op = (time.perf_counter() - start) / op_rounds
    kernel_seconds = benchmark.stats.stats.min
    overhead = ops_per_run * seconds_per_op
    assert overhead < 0.02 * kernel_seconds, (
        f"telemetry overhead {overhead * 1e6:.1f}us is not <2% of the "
        f"{kernel_seconds * 1e3:.1f}ms kernel"
    )


def test_checkpoint_overhead(benchmark):
    """The gated kernel via :func:`simulate_traces` with checkpointing off.

    Checkpointing must be free when not requested.  Its entire footprint
    on the direct execution path is one thread-scope policy lookup per
    *simulation* (never per cycle): ``simulate_traces`` reads
    ``_SCOPE.checkpoint`` once and proceeds straight to ``System.run``
    when it is ``None``.  As with the telemetry bound, a wall-clock A/B
    of a sub-2% effect is hopeless on shared runners, so the bound is
    proven instead of sampled: the per-lookup cost is measured directly
    on this machine and multiplied by lookups-per-run against the
    kernel's own measured time.  Anything that moves checkpoint work
    into the per-cycle loop lands in the >25% mean gate instead (this
    benchmark runs under the same ``--benchmark-compare-fail``).
    """
    from repro.sim import runner as runner_module
    from repro.sim.runner import simulate_traces

    traces = _kernel_traces()
    config = dataclasses.replace(baseline_config(), engine=ENGINE_EVENT)

    def run_direct():
        return simulate_traces(list(traces), config)

    result = benchmark.pedantic(run_direct, rounds=3, iterations=1)
    assert result.total_cycles > 0

    # Measured cost of the policy-off lookup (the same attribute read
    # simulate_traces performs), on this machine.
    probe_rounds = 100_000
    scope = runner_module._SCOPE
    start = time.perf_counter()
    for _ in range(probe_rounds):
        if scope.checkpoint is not None:  # pragma: no cover - policy is off
            raise AssertionError("benchmark must run with checkpointing off")
    seconds_per_lookup = (time.perf_counter() - start) / probe_rounds
    kernel_seconds = benchmark.stats.stats.min
    overhead = 1 * seconds_per_lookup  # one lookup per simulation
    assert overhead < 0.02 * kernel_seconds, (
        f"checkpointing-off overhead {overhead * 1e6:.2f}us is not <2% of the "
        f"{kernel_seconds * 1e3:.1f}ms kernel"
    )


def test_fig18_dense(benchmark):
    """Dense 8-core fig18 H-group hot path (guards the batched-serve path).

    This is the skip-poor regime where the event engine degenerates to
    per-cycle dispatch without batched serving; the >25% gate on its mean
    keeps the fast path from silently regressing (or being disabled —
    which would land well outside the gate).
    """
    traces = _dense_traces()
    result = benchmark.pedantic(_run_dense, args=(traces, ENGINE_EVENT), rounds=3, iterations=1)
    assert result.total_cycles > 0


def test_fig18_dense_compiled(benchmark):
    """Same dense fig18 hot path through the config-specialised engine.

    The warmup round absorbs the one-time render/compile of the
    generated module (cached in-process afterwards), so the timed
    rounds measure steady-state dispatch only — the same thing the
    event-engine gate above measures.  Measured against ``event`` on a
    quiet machine the specialised module wins ~1.06x min / ~1.07x
    median: the folded constants save attribute traffic, but CPython's
    interpreter loop dominates this skip-poor regime.  The >25% mean
    gate holds that modest win; it is not asserted as a ratio here
    because run-to-run noise exceeds the margin.
    """
    traces = _dense_traces()
    result = benchmark.pedantic(
        _run_dense, args=(traces, ENGINE_COMPILED), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.total_cycles > 0


def _cold_figure_seconds(engine: str, run, reps: int = 2, **kwargs) -> float:
    best = float("inf")
    for _ in range(reps):
        GLOBAL_ALONE_CACHE.clear()
        with engine_override(engine):
            start = time.perf_counter()
            run(**kwargs)
            best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(
    not os.environ.get("REPRO_ENGINE_SPEEDUP_GATE"),
    reason="wall-clock ratio assertions are too noisy for the correctness matrix; "
    "set REPRO_ENGINE_SPEEDUP_GATE=1 (done by CI's benchmark-gate job) to run",
)
def test_engine_speedup_on_idle_heavy_figures(bench_apps):
    """Cold-run tick-vs-event comparison over fig05/fig15/fig18."""
    figures = (
        ("fig05", fig05_idle_periods.run, {"apps": bench_apps, "instructions": BENCH_INSTRUCTIONS}),
        ("fig15", fig15_low_utilization.run, {"apps": bench_apps, "instructions": BENCH_INSTRUCTIONS}),
        ("fig18", fig18_multicore_idle.run, {"instructions": BENCH_INSTRUCTIONS}),
    )
    total_tick = total_event = 0.0
    lines = []
    for name, run, kwargs in figures:
        tick_s = _cold_figure_seconds(ENGINE_TICK, run, **kwargs)
        event_s = _cold_figure_seconds(ENGINE_EVENT, run, **kwargs)
        total_tick += tick_s
        total_event += event_s
        speedup = tick_s / event_s
        lines.append(f"{name}: tick={tick_s:.3f}s event={event_s:.3f}s speedup={speedup:.2f}x")
        # Per-figure floors, set well under the measured ratios so noisy
        # CI machines do not flake: the point is catching an engine that
        # stopped skipping, not enforcing the exact constant.
        assert speedup > (1.3 if name == "fig18" else 2.0), lines[-1]
    combined = total_tick / total_event
    lines.append(f"combined: tick={total_tick:.3f}s event={total_event:.3f}s speedup={combined:.2f}x")
    print()
    print("\n".join(lines))
    assert combined > 2.0, lines[-1]
