"""Benchmark: Figure 13 — impact of the DRAM idleness predictor."""

from repro.experiments import fig13_predictor

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig13_predictor(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig13_predictor.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig13_predictor.format_table(data))

    averages = data["averages"]
    # Shape checks: every DR-STRaNGe variant beats the baseline for RNG
    # applications, and the RL predictor performs comparably to the simple
    # predictor (Section 8.6).
    for label in ("no-predictor", "simple-predictor", "rl-predictor"):
        assert averages[label]["rng_slowdown"] < averages["rng-oblivious"]["rng_slowdown"]
    simple = averages["simple-predictor"]["non_rng_slowdown"]
    rl = averages["rl-predictor"]["non_rng_slowdown"]
    assert abs(simple - rl) / simple < 0.15
