"""Benchmark: Figure 9 — dual-core system fairness."""

from repro.experiments import fig09_fairness

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig09_fairness(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig09_fairness.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig09_fairness.format_table(data))

    # Headline claim: DR-STRaNGe improves system fairness over the
    # RNG-oblivious baseline (paper: 32.1% on average).
    assert data["fairness_improvement_vs_baseline"] > 0.10
    averages = data["average_unfairness"]
    assert averages["dr-strange"] < averages["rng-oblivious"]
