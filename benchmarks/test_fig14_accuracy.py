"""Benchmark: Figure 14 — DRAM idleness predictor accuracy."""

from repro.experiments import fig14_predictor_accuracy

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig14_predictor_accuracy(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig14_predictor_accuracy.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        core_counts=(2, 4),
        cache=bench_cache,
    )
    print()
    print(fig14_predictor_accuracy.format_table(data))

    two_core = data["two_core_average"]
    # Shape check: both predictors classify well over half of the idle
    # periods correctly on two-core workloads (paper: ~80%).
    assert two_core["simple"] > 0.55
    assert two_core["rl"] > 0.5
    # Multi-core workloads have lower accuracy (more complex interference).
    if data["multi_core"]:
        assert data["multi_core"][0]["accuracy"]["simple"] <= two_core["simple"] + 0.1
