"""Benchmark: Figure 5 — distribution of DRAM idle-period lengths."""

from repro.experiments import fig05_idle_periods

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig05_idle_periods(benchmark, bench_apps):
    data = run_once(
        benchmark,
        fig05_idle_periods.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
    )
    print()
    print(fig05_idle_periods.format_table(data))

    # Shape check: a significant fraction of idle periods is too short to
    # generate a full 64-bit number, but most are long enough for an 8-bit
    # batch (the motivation for small-batch generation in Section 5.1).
    for row in data["series"]:
        assert row["num_periods"] > 0
        assert row["fraction_at_least_8bit"] >= row["fraction_at_least_64bit"]
    memory_intensive = data["series"][-1]
    assert memory_intensive["fraction_at_least_64bit"] < 0.9
