"""Benchmark: Figure 8 — multi-core slowdown of RNG applications."""

from repro.experiments import fig08_multicore_rng

from conftest import run_once


def test_fig08_multicore_rng(benchmark, bench_cache):
    data = run_once(
        benchmark,
        fig08_multicore_rng.run,
        instructions=20_000,
        workloads_per_group=2,
        core_counts=(),
        include_four_core_groups=True,
        cache=bench_cache,
    )
    print()
    print(fig08_multicore_rng.format_table(data))

    rows = data["four_core_groups"]
    assert len(rows) == 4
    # Shape check: DR-STRaNGe improves RNG applications at least as much as
    # the Greedy Idle design on average (Section 8.1.2).
    drs = sum(r["rng_slowdown"]["dr-strange"] for r in rows) / len(rows)
    greedy = sum(r["rng_slowdown"]["greedy"] for r in rows) / len(rows)
    baseline = sum(r["rng_slowdown"]["rng-oblivious"] for r in rows) / len(rows)
    assert drs < baseline
    assert drs <= greedy * 1.05
