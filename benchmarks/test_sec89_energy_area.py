"""Benchmark: Section 8.9 — energy consumption and area overhead."""

from repro.experiments import sec89_energy_area

from conftest import BENCH_INSTRUCTIONS, run_once


def test_sec89_energy_area(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        sec89_energy_area.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(sec89_energy_area.format_table(data))

    # Shape checks: DR-STRaNGe reduces energy (paper: 21%) and its area
    # overhead with the simple predictor is a fraction of a CPU core
    # (paper: 0.0022 mm^2 = 0.00048%).
    assert data["avg_energy_reduction"] > 0.05
    area = data["area"]
    assert 0.001 <= area["simple_predictor_mm2"] <= 0.005
    assert area["simple_predictor_fraction_of_core"] < 0.0001
    assert area["rl_predictor_mm2"] > area["simple_predictor_mm2"]
