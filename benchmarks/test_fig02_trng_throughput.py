"""Benchmark: Figure 2 — effect of the DRAM TRNG throughput."""

from repro.experiments import fig02_trng_throughput

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig02_trng_throughput(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig02_trng_throughput.run,
        apps=bench_apps,
        trng_throughputs_mbps=(200.0, 800.0, 3200.0, 6400.0),
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig02_trng_throughput.format_table(data))

    series = data["series"]
    # Shape check: slowdown improves with TRNG throughput and saturates at
    # the high end (Figure 2's two observations).
    assert series[0]["avg_slowdown"] >= series[-1]["avg_slowdown"]
    last_two_delta = series[-2]["avg_slowdown"] - series[-1]["avg_slowdown"]
    first_two_delta = series[0]["avg_slowdown"] - series[1]["avg_slowdown"]
    assert last_two_delta <= max(first_two_delta, 0.2)
