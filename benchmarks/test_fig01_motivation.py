"""Benchmark: Figure 1 — RNG interference on the RNG-oblivious baseline."""

from repro.experiments import fig01_motivation

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig01_motivation(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig01_motivation.run,
        apps=bench_apps,
        throughputs_mbps=(640.0, 2560.0, 5120.0),
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig01_motivation.format_table(data))

    series = data["series"]
    # Shape check: interference and unfairness grow with the required RNG
    # throughput (Figure 1's key observation).
    assert series[-1]["avg_non_rng_slowdown"] > series[0]["avg_non_rng_slowdown"]
    assert series[-1]["avg_unfairness"] > 1.0
    assert series[-1]["avg_non_rng_slowdown"] > 1.2
