"""Benchmark: Figure 11 — memory request scheduler comparison (no buffer)."""

from repro.experiments import fig11_scheduler
from repro.workloads.suites import representative_subset

from conftest import BENCH_INSTRUCTIONS, run_once

#: Figure 11 runs on a larger roster than the other benchmarks.  The
#: unfairness index of a dual-core workload is dominated by the non-RNG
#: application's memory slowdown, and at the 4-application roster a
#: single streaming outlier (ycsb3: unfairness ~5.2 under FR-FCFS+Cap
#: vs. ~2.6 under BLISS, whose blacklisting throttles the bursty RNG
#: app) dominates the 4-workload average and makes the BLISS comparison
#: parameter-fragile.  Eight applications dilute the outlier; the
#: averages are stable across roster/instruction-count choices there
#: (rng-aware/bliss unfairness ratio ~1.16 at 8 apps vs. ~1.34 at 4).
FIG11_NUM_APPS = 8


def test_fig11_scheduler(benchmark, bench_cache):
    data = run_once(
        benchmark,
        fig11_scheduler.run,
        apps=representative_subset(FIG11_NUM_APPS),
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig11_scheduler.format_table(data))

    averages = data["averages"]
    # Shape checks.  The stable invariant across all run parameters is
    # that the RNG-aware scheduler tracks FR-FCFS+Cap closely on both
    # slowdown and the unfairness index (its queue separation shifts
    # *when* requests are served, not how fairly, absent a buffer).
    # BLISS improves the raw unfairness index at these scales by
    # blacklisting the bursty RNG application, so the RNG-aware
    # scheduler is only required not to be much worse than it.
    assert set(averages) == {"fr-fcfs+cap", "bliss", "rng-aware"}
    assert averages["rng-aware"]["non_rng_slowdown"] < averages["fr-fcfs+cap"]["non_rng_slowdown"] * 1.15
    assert averages["rng-aware"]["unfairness"] < averages["fr-fcfs+cap"]["unfairness"] * 1.10
    assert averages["rng-aware"]["unfairness"] < averages["bliss"]["unfairness"] * 1.25
