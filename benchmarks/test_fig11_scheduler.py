"""Benchmark: Figure 11 — memory request scheduler comparison (no buffer)."""

from repro.experiments import fig11_scheduler

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig11_scheduler(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig11_scheduler.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig11_scheduler.format_table(data))

    averages = data["averages"]
    # Shape check: the three schedulers are within a plausible range of
    # each other; BLISS does not beat the RNG-aware scheduler on fairness
    # by a large margin (the paper finds BLISS degrades fairness).
    assert set(averages) == {"fr-fcfs+cap", "bliss", "rng-aware"}
    assert averages["rng-aware"]["non_rng_slowdown"] < averages["fr-fcfs+cap"]["non_rng_slowdown"] * 1.15
    assert averages["rng-aware"]["unfairness"] < averages["bliss"]["unfairness"] * 1.25
