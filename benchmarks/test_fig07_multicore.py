"""Benchmark: Figure 7 — multi-core weighted speedup of non-RNG applications."""

from repro.experiments import fig07_multicore_speedup

from conftest import run_once


def test_fig07_multicore_speedup(benchmark, bench_cache):
    data = run_once(
        benchmark,
        fig07_multicore_speedup.run,
        instructions=20_000,
        workloads_per_group=2,
        core_counts=(8,),
        include_four_core_groups=True,
        cache=bench_cache,
    )
    print()
    print(fig07_multicore_speedup.format_table(data))

    rows = data["four_core_groups"] + data["multi_core_groups"]
    assert len(data["four_core_groups"]) == 4
    # Shape check: DR-STRaNGe improves the weighted speedup of non-RNG
    # applications over the baseline on average across groups.
    average_norm = sum(r["normalized_weighted_speedup"]["dr-strange"] for r in rows) / len(rows)
    assert average_norm > 1.0
