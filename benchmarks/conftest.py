"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures on a
scaled-down workload set (see EXPERIMENTS.md for the scaling notes) and
prints the same rows/series the paper reports.  Benchmarks are run with
``pytest benchmarks/ --benchmark-only``; each experiment is executed once
per benchmark (``benchmark.pedantic`` with a single round), because a
single figure already aggregates many simulations internally.

Alone runs (every per-application single-core baseline simulation) are
design-independent, so the harness shares them through the persistent
content-addressed result cache (:mod:`repro.orchestration`): the first
benchmark session pays for them once, every later session — and every
benchmark within a session — reuses them from disk.  Set
``REPRO_BENCH_CACHE_DIR`` to relocate the cache, or point it at a fresh
directory to force cold alone runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.orchestration import persistent_alone_cache
from repro.sim.runner import AloneRunCache
from repro.workloads.suites import representative_subset

#: Per-core instruction count used by the benchmark harness.
BENCH_INSTRUCTIONS = 25_000

#: Number of non-RNG applications paired with the RNG benchmark.
BENCH_NUM_APPS = 4

#: On-disk result cache shared across benchmark sessions.
BENCH_CACHE_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_CACHE_DIR", Path(__file__).resolve().parent.parent / ".repro-cache" / "benchmarks"
    )
)


@pytest.fixture(scope="session")
def bench_cache() -> AloneRunCache:
    """Alone-run cache shared across benchmarks *and* benchmark sessions."""
    return persistent_alone_cache(BENCH_CACHE_DIR)


@pytest.fixture(scope="session")
def bench_apps():
    """The intensity-diverse application subset used by the benchmarks."""
    return representative_subset(BENCH_NUM_APPS)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
