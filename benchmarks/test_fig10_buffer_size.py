"""Benchmark: Figure 10 — impact of the random number buffer size."""

from repro.experiments import fig10_buffer_size

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig10_buffer_size(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig10_buffer_size.run,
        apps=bench_apps,
        buffer_sizes=(0, 1, 4, 16, 64),
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig10_buffer_size.format_table(data))

    series = {row["buffer_entries"]: row for row in data["series"]}
    # Shape checks: without a buffer nothing is served from it, and adding
    # a buffer improves RNG application performance substantially.
    assert series[0]["avg_buffer_serve_rate"] == 0.0
    assert series[16]["avg_buffer_serve_rate"] > 0.4
    assert series[16]["avg_rng_slowdown"] < series[0]["avg_rng_slowdown"]
    assert series[16]["avg_non_rng_slowdown"] < series[0]["avg_non_rng_slowdown"]
