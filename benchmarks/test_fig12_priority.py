"""Benchmark: Figure 12 — priority-based RNG-aware scheduling."""

from repro.experiments import fig12_priority

from conftest import run_once


def test_fig12_priority(benchmark, bench_cache):
    data = run_once(
        benchmark,
        fig12_priority.run,
        core_counts=(4,),
        workloads_per_core_count=2,
        instructions=20_000,
        cache=bench_cache,
    )
    print()
    print(fig12_priority.format_table(data))

    row = data["series"][0]
    speedups = row["normalized_weighted_speedup"]
    rng_slowdowns = row["rng_slowdown"]
    # Shape checks: prioritising a class benefits that class relative to
    # the RNG-oblivious baseline.
    assert speedups["dr-strange (non-rng high)"] > 0.95
    assert rng_slowdowns["dr-strange (rng high)"] < rng_slowdowns["rng-oblivious"]
