"""Benchmark: Section 8.8 — low-intensity (640 Mb/s) RNG applications."""

from repro.experiments import fig06_dualcore_performance, sec88_low_intensity

from conftest import BENCH_INSTRUCTIONS, run_once


def test_sec88_low_intensity(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        sec88_low_intensity.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(sec88_low_intensity.format_table(data))

    # Shape check: with a low required RNG throughput the baseline
    # interference is small, so DR-STRaNGe's improvement is small too
    # (paper: 3-5% instead of ~18-25%).
    five_gbps = fig06_dualcore_performance.run(
        apps=bench_apps, instructions=BENCH_INSTRUCTIONS, cache=bench_cache
    )
    assert (
        data["averages"]["rng-oblivious"]["non_rng_slowdown"]
        < five_gbps["averages"]["rng-oblivious"]["non_rng_slowdown"]
    )
    assert (
        data["improvements"]["non_rng_improvement"]
        < five_gbps["improvements"]["non_rng_improvement"] + 0.02
    )
