"""Benchmark: Figure 17 (appendix) — 10 Gb/s RNG applications."""

from repro.experiments import fig06_dualcore_performance, fig17_high_throughput

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig17_high_throughput(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig17_high_throughput.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig17_high_throughput.format_table(data))

    # Shape check: at 10 Gb/s the baseline interference is larger than at
    # 5 Gb/s, and DR-STRaNGe's improvements persist (appendix A.1).
    five_gbps = fig06_dualcore_performance.run(
        apps=bench_apps, instructions=BENCH_INSTRUCTIONS, cache=bench_cache
    )
    assert (
        data["averages"]["rng-oblivious"]["non_rng_slowdown"]
        >= five_gbps["averages"]["rng-oblivious"]["non_rng_slowdown"] * 0.95
    )
    assert data["improvements"]["non_rng_improvement"] > 0.05
    assert data["improvements"]["fairness_improvement"] > 0.05
