"""Benchmark: Figure 18 (appendix) — multi-core idle-period lengths."""

from repro.experiments import fig18_multicore_idle

from conftest import run_once


def test_fig18_multicore_idle(benchmark):
    data = run_once(
        benchmark,
        fig18_multicore_idle.run,
        core_counts=(4, 8),
        categories=("L", "M", "H"),
        instructions=15_000,
    )
    print()
    print(fig18_multicore_idle.format_table(data))

    by_group = {row["group"]: row for row in data["series"]}
    # Shape checks: most idle periods are shorter than a full 64-bit
    # generation, and idle periods shrink with memory intensity.
    for row in data["series"]:
        assert row["num_periods"] > 0
    assert by_group["H (4)"]["box"]["median"] <= by_group["L (4)"]["box"]["median"]
    high_intensity = by_group["H (8)"]
    assert high_intensity["fraction_below_64bit"] > 0.5
