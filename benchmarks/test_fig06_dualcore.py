"""Benchmark: Figure 6 — dual-core performance of the three designs."""

from repro.experiments import fig06_dualcore_performance

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig06_dualcore_performance(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig06_dualcore_performance.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig06_dualcore_performance.format_table(data))

    averages = data["averages"]
    # Headline claims: DR-STRaNGe improves both application classes over
    # the RNG-oblivious baseline (paper: 17.9% and 25.1%).
    assert averages["dr-strange"]["non_rng_slowdown"] < averages["rng-oblivious"]["non_rng_slowdown"]
    assert averages["dr-strange"]["rng_slowdown"] < averages["rng-oblivious"]["rng_slowdown"]
    assert data["improvements"]["non_rng_improvement"] > 0.05
    assert data["improvements"]["rng_improvement"] > 0.10
