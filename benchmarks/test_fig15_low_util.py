"""Benchmark: Figure 15 — impact of low-utilisation prediction."""

from repro.experiments import fig15_low_utilization

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig15_low_utilization(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig15_low_utilization.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        thresholds=(0, 4),
        cache=bench_cache,
    )
    print()
    print(fig15_low_utilization.format_table(data))

    averages = data["averages"]
    # Shape check: enabling low-utilisation prediction (threshold 4) keeps
    # or improves the RNG application benefit relative to threshold 0, and
    # both beat the RNG-oblivious baseline.
    assert averages["threshold-4"]["rng_slowdown"] < averages["rng-oblivious"]["rng_slowdown"]
    assert averages["threshold-4"]["buffer_serve_rate"] >= averages["threshold-0"]["buffer_serve_rate"] - 0.05
