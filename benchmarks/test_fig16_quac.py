"""Benchmark: Figure 16 — DR-STRaNGe with the QUAC-TRNG mechanism."""

from repro.experiments import fig16_quac

from conftest import BENCH_INSTRUCTIONS, run_once


def test_fig16_quac(benchmark, bench_apps, bench_cache):
    data = run_once(
        benchmark,
        fig16_quac.run,
        apps=bench_apps,
        instructions=BENCH_INSTRUCTIONS,
        cache=bench_cache,
    )
    print()
    print(fig16_quac.format_table(data))

    averages = data["averages"]
    # Shape check: the improvements are mechanism-independent (Section 8.7).
    assert averages["dr-strange"]["non_rng_slowdown"] < averages["rng-oblivious"]["non_rng_slowdown"]
    assert averages["dr-strange"]["rng_slowdown"] < averages["rng-oblivious"]["rng_slowdown"]
    assert averages["dr-strange"]["unfairness"] < averages["rng-oblivious"]["unfairness"]
